# Empty compiler generated dependencies file for corun_isolation.
# This may be replaced when dependencies are built.
