// Swap cache: the staging buffer between local memory and the swap
// partition.
//
// Holds unmapped pages that (a) were just swapped in or prefetched, or
// (b) are being written back during eviction. In Linux there is one swap
// cache (radix trees over swap-entry blocks) shared by all applications;
// Canvas gives each cgroup a private cache plus one global cache for shared
// pages. Both roles are instances of this class — isolation is expressed by
// who owns the instance.
//
// Pages arrive `locked` while their RDMA transfer is in flight; only
// unlocked pages are eligible for capacity shrinking. An internal LRU
// provides the shrink order.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "common/types.h"

namespace canvas::mem {

class SwapCache {
 public:
  struct Entry {
    CgroupId app;
    PageId page;
    bool locked;
    bool prefetched;  // inserted by the prefetcher (vs demand / writeback)
    SimTime inserted;
  };

  SwapCache(std::string name, std::uint64_t capacity_pages)
      : name_(std::move(name)), capacity_(capacity_pages) {}

  const std::string& name() const { return name_; }
  std::uint64_t capacity() const { return capacity_; }
  void set_capacity(std::uint64_t pages) { capacity_ = pages; }
  std::uint64_t size() const { return lru_.size(); }
  bool OverCapacity() const { return size() > capacity_; }

  bool Contains(CgroupId app, PageId page) const;
  /// Returns the entry or nullptr. Does not affect LRU order.
  const Entry* Lookup(CgroupId app, PageId page) const;

  /// Insert a page (must not already be present).
  void Insert(CgroupId app, PageId page, bool locked, bool prefetched,
              SimTime now);

  /// Mark an in-flight page's data as arrived; refreshes LRU position.
  void Unlock(CgroupId app, PageId page);

  /// Remove a page (mapped into the process, writeback finished, or
  /// released). Returns false if absent.
  bool Remove(CgroupId app, PageId page);

  /// Pop the least-recently-inserted *unlocked* entry, or return false.
  /// Used by the shrink path; the caller transitions the page state.
  bool PopLruUnlocked(Entry& out);

  // --- statistics ---
  std::uint64_t lookups() const { return lookups_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t inserts() const { return inserts_; }
  std::uint64_t shrunk() const { return shrunk_; }

 private:
  using LruList = std::list<Entry>;
  struct Key {
    CgroupId app;
    PageId page;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>()(
          (std::uint64_t(k.app) << 48) ^ k.page);
    }
  };

  std::string name_;
  std::uint64_t capacity_;
  LruList lru_;  // front = most recent
  std::unordered_map<Key, LruList::iterator, KeyHash> index_;
  mutable std::uint64_t lookups_ = 0;
  mutable std::uint64_t hits_ = 0;
  std::uint64_t inserts_ = 0;
  std::uint64_t shrunk_ = 0;
};

}  // namespace canvas::mem
