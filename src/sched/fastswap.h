// Fastswap-style sync/async separation (Amaro et al., EuroSys '20).
//
// Demand swap-ins go to a high-priority queue that is always served before
// the low-priority prefetch queue. This removes head-of-line blocking of
// faults by prefetches, but under co-running applications it starves
// prefetches: their queueing delay becomes unbounded, producing the long
// tail of the paper's Figure 6 (36.9% of prefetches slower than 512us, up
// to 52ms). No fairness across applications.
#pragma once

#include <deque>

#include "sched/scheduler.h"

namespace canvas::sched {

class FastswapScheduler : public DispatchScheduler {
 public:
  void Enqueue(rdma::RequestPtr req) override;
  rdma::RequestPtr Dequeue(rdma::Direction dir, SimTime now) override;
  std::vector<rdma::RequestPtr> DrainMatching(
      const std::function<bool(const rdma::Request&)>& pred) override;
  std::size_t QueueDepth(CgroupId cg) const override;
  const char* name() const override { return "fastswap"; }

 private:
  std::deque<rdma::RequestPtr> demand_;
  std::deque<rdma::RequestPtr> prefetch_;
  std::deque<rdma::RequestPtr> swapout_;
};

}  // namespace canvas::sched
