// Hybrid local tier test suite (DESIGN.md §14): preset registry, report
// schema gating (tier-off output must stay byte-for-byte schema v2),
// tiered determinism, and the tier invariants — single residency (a page's
// remote copy lives in exactly one of {tier, pool, disk}, mirrored
// consistently across mem::Page, swapalloc::EntryMeta and the tier's
// resident index), per-cgroup quotas never exceeded, and the
// content_version oracle holding across promotion / demotion / blackout
// failover. Plus the serial-vs-parallel byte-identity differential on
// tiered pooled configs.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/flat_map.h"
#include "core/experiment.h"
#include "core/report.h"
#include "fault/fault_plan.h"
#include "tier/tier.h"
#include "workload/apps.h"

namespace canvas::core {
namespace {

AppSpec Spec(const std::string& name, double scale, double ratio,
             std::uint32_t cores, std::uint64_t seed) {
  workload::AppParams p;
  p.scale = scale;
  p.seed = seed;
  auto w = workload::MakeByName(name, p);
  auto cg = workload::CgroupFor(w, ratio, cores);
  return AppSpec{std::move(w), std::move(cg)};
}

std::vector<AppSpec> Corun(double scale, std::uint64_t seed) {
  std::vector<AppSpec> apps;
  apps.push_back(Spec("memcached", scale, 0.25, 4, seed));
  apps.push_back(Spec("snappy", scale, 0.25, 1, seed));
  return apps;
}

/// Drain in-flight writebacks, failback probes and policy ticks after the
/// last thread finishes (bounded; cf. fault_injection_test::Settle).
void Settle(Experiment& e) {
  e.simulator().RunUntil(e.simulator().Now() + 200 * kMillisecond);
}

/// Full report (CSV + JSON) for byte comparison.
std::string ReportOf(const Experiment& e) {
  std::ostringstream os;
  WriteCsv(os, e.system(), "run", /*header=*/true);
  WriteJson(os, e.system(), "run");
  return os.str();
}

// --- preset registry --------------------------------------------------------

TEST(TierConfig, PresetRegistry) {
  tier::TierConfig none = tier::TierConfig::FromName("none");
  EXPECT_FALSE(none.enabled());
  EXPECT_EQ(none.capacity_pages, 0u);

  tier::TierConfig cxl = tier::TierConfig::FromName("cxl");
  EXPECT_TRUE(cxl.enabled());
  EXPECT_EQ(cxl.name, "cxl");
  EXPECT_GT(cxl.capacity_pages, 0u);

  tier::TierConfig nvm = tier::TierConfig::FromName("nvm");
  EXPECT_TRUE(nvm.enabled());
  // NVM trades latency for capacity relative to the CXL preset.
  EXPECT_GT(nvm.latency, cxl.latency);
  EXPECT_GT(nvm.capacity_pages, cxl.capacity_pages);
  // Both presets stay far below the disk backstop's service latency, so
  // failover-to-tier beats failover-to-disk by construction.
  fault::DiskBackend::Config disk;
  EXPECT_LT(cxl.latency, disk.latency);
  EXPECT_LT(nvm.latency, disk.latency);

  EXPECT_THROW(tier::TierConfig::FromName("optane9000"),
               std::invalid_argument);
  EXPECT_EQ(tier::TierConfig::ListTiers().size(), 3u);
}

TEST(TierConfig, CgroupQuotaIsFractionOfCapacity) {
  tier::TierConfig cfg = tier::TierConfig::FromName("cxl");
  EXPECT_EQ(cfg.CgroupQuota(),
            std::uint64_t(double(cfg.capacity_pages) * cfg.quota_frac));
  cfg.capacity_pages = 1;
  cfg.quota_frac = 0.1;
  EXPECT_EQ(cfg.CgroupQuota(), 1u);  // never rounds down to zero
}

// --- report schema gating ---------------------------------------------------

TEST(TierReport, DisabledTierKeepsSchemaV2) {
  // The tier-off report must be indistinguishable from a pre-tier build:
  // schema v2, no tier columns, no tier JSON section — and an explicit
  // "none" preset must be byte-identical to an untouched config.
  SystemConfig cfg = SystemConfig::CanvasFull();
  Experiment plain(cfg, Corun(0.05, 7));
  ASSERT_TRUE(plain.Run());
  Settle(plain);
  std::string report = ReportOf(plain);

  EXPECT_EQ(report.rfind("# schema: v2", 0), 0u) << "CSV schema line";
  EXPECT_EQ(report.find("tier_"), std::string::npos);
  EXPECT_NE(report.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_EQ(report.find("\"tier\""), std::string::npos);

  SystemConfig explicit_none = SystemConfig::CanvasFull();
  explicit_none.tier = tier::TierConfig::FromName("none");
  Experiment none(explicit_none, Corun(0.05, 7));
  ASSERT_TRUE(none.Run());
  Settle(none);
  EXPECT_EQ(ReportOf(none), report);
}

TEST(TierReport, EnabledTierEmitsSchemaV3) {
  SystemConfig cfg = SystemConfig::CanvasFull();
  cfg.tier = tier::TierConfig::FromName("cxl");
  Experiment e(cfg, Corun(0.05, 7));
  ASSERT_TRUE(e.Run());
  Settle(e);
  std::string report = ReportOf(e);

  EXPECT_EQ(report.rfind("# schema: v3", 0), 0u) << "CSV schema line";
  EXPECT_NE(report.find("tier_swapins"), std::string::npos);
  EXPECT_NE(report.find("\"schema_version\": 3"), std::string::npos);
  EXPECT_NE(report.find("\"tier\""), std::string::npos);
  EXPECT_NE(report.find("\"preset\": \"cxl\""), std::string::npos);
  ASSERT_NE(e.system().tier(), nullptr);
  // The tier actually absorbed writebacks (it is first in the writeback
  // path, not a dead config knob).
  EXPECT_GT(e.system().tier()->writes(), 0u);
}

// --- determinism ------------------------------------------------------------

TEST(TierDeterminism, SameSeedSameBytes) {
  // Tiered run under a fault plan (blackout drives failover-to-tier, a
  // tier-latency window exercises the tier's own fault hooks): two runs
  // with the same seed must produce byte-identical reports.
  SystemConfig cfg = SystemConfig::CanvasFull();
  cfg.tier = tier::TierConfig::FromName("cxl");
  auto plan = std::make_shared<fault::FaultPlan>();
  plan->AddBlackout(1 * kMillisecond, 6 * kMillisecond);
  plan->AddTierLatencySpike(2 * kMillisecond, 4 * kMillisecond,
                            10 * kMicrosecond);
  cfg.fault_plan = plan;

  std::string first;
  for (int rep = 0; rep < 2; ++rep) {
    Experiment e(cfg, Corun(0.05, 7));
    ASSERT_TRUE(e.Run());
    Settle(e);
    if (rep == 0)
      first = ReportOf(e);
    else
      EXPECT_EQ(ReportOf(e), first);
  }
  EXPECT_FALSE(first.empty());
}

// --- tier invariants --------------------------------------------------------

/// Walk every page of every app and check the single-residency mirrors:
/// tier_backed implies not disk_backed, the entry metadata agrees, and the
/// tier's resident index matches page state exactly.
void CheckResidencyMirrors(const SwapSystem& sys) {
  const tier::TierBackend* t = sys.tier();
  ASSERT_NE(t, nullptr);
  std::uint64_t tier_backed_pages = 0;
  for (std::size_t app = 0; app < sys.app_count(); ++app) {
    for (PageId p = 0; p < sys.page_count(app); ++p) {
      const mem::Page& pg = sys.page(app, p);
      std::uint64_t key = PackAppPage(CgroupId(app), p);
      if (pg.shared) {
        // Shared pages are never tier residents.
        EXPECT_FALSE(pg.tier_backed) << "app " << app << " page " << p;
        EXPECT_FALSE(t->Contains(key)) << "app " << app << " page " << p;
        continue;
      }
      EXPECT_EQ(t->Contains(key), pg.tier_backed)
          << "app " << app << " page " << p;
      if (pg.tier_backed) {
        ++tier_backed_pages;
        EXPECT_FALSE(pg.disk_backed) << "app " << app << " page " << p;
        ASSERT_NE(pg.entry, kInvalidEntry) << "app " << app << " page " << p;
      }
      if (pg.entry != kInvalidEntry) {
        const swapalloc::EntryMeta& m = sys.partition(app).meta(pg.entry);
        EXPECT_EQ(m.on_tier, pg.tier_backed)
            << "app " << app << " page " << p;
        EXPECT_FALSE(m.on_tier && m.on_disk)
            << "app " << app << " page " << p;
      }
    }
  }
  EXPECT_EQ(t->used_pages(), tier_backed_pages);
  EXPECT_LE(t->used_pages(), t->config().capacity_pages);
  EXPECT_LE(t->peak_used(), t->config().capacity_pages);
}

TEST(TierProperty, SingleResidencyMirrorsAfterChurn) {
  // A deliberately tiny tier forces constant admit/reject/demote churn;
  // at quiescence every mirror of residency must agree.
  SystemConfig cfg = SystemConfig::CanvasFull();
  tier::TierConfig tiny;
  tiny.capacity_pages = 256;
  tiny.name = "tiny";
  tiny.cold_age = 2 * kMillisecond;  // demote aggressively
  cfg.tier = tiny;
  Experiment e(cfg, Corun(0.08, 7));
  ASSERT_TRUE(e.Run());
  Settle(e);
  EXPECT_TRUE(e.system().Quiescent());
  CheckResidencyMirrors(e.system());
  // The bound actually bound: the co-run's footprint dwarfs 256 pages, so
  // the tier must have turned writebacks away.
  std::uint64_t rejects = 0;
  for (std::size_t i = 0; i < e.system().app_count(); ++i)
    rejects += e.system().metrics(i).tier_rejects;
  EXPECT_GT(rejects, 0u);
}

TEST(TierProperty, CgroupQuotaNeverExceeded) {
  SystemConfig cfg = SystemConfig::CanvasFull();
  tier::TierConfig tiny;
  tiny.capacity_pages = 128;
  tiny.quota_frac = 0.5;
  tiny.name = "tiny";
  cfg.tier = tiny;
  Experiment e(cfg, Corun(0.08, 7));
  ASSERT_TRUE(e.Run());
  Settle(e);
  const tier::TierBackend* t = e.system().tier();
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->quota(), 64u);
  for (std::size_t i = 0; i < e.system().app_count(); ++i)
    EXPECT_LE(t->cgroup_used(e.system().cgroup_of(i)), t->quota())
        << e.system().app_name(i);
  EXPECT_LE(t->used_pages(), tiny.capacity_pages);
  EXPECT_LE(t->peak_used(), tiny.capacity_pages);
}

TEST(TierProperty, OracleHoldsAcrossPromotionDemotionFailover) {
  // Blackout long enough to exhaust retries: cgroups fail over to the
  // tier (not the disk), keep running at tier latency, fail back after
  // the fabric heals — with zero stale reads across every promotion,
  // demotion and failover transition, and residency mirrors intact.
  SystemConfig cfg = SystemConfig::CanvasFull();
  cfg.tier = tier::TierConfig::FromName("cxl");
  auto plan = std::make_shared<fault::FaultPlan>();
  plan->AddBlackout(1 * kMillisecond, 8 * kMillisecond);
  cfg.fault_plan = plan;
  Experiment e(cfg, Corun(0.05, 7));
  ASSERT_TRUE(e.Run());
  Settle(e);
  EXPECT_TRUE(e.system().Quiescent());

  std::uint64_t stale = 0, tier_failovers = 0, failovers = 0, disk_out = 0,
                tier_in = 0, tier_out = 0;
  for (std::size_t i = 0; i < e.system().app_count(); ++i) {
    const AppMetrics& m = e.system().metrics(i);
    stale += m.stale_reads;
    tier_failovers += m.tier_failovers;
    failovers += m.failovers;
    disk_out += m.disk_swapouts;
    tier_in += m.tier_swapins;
    tier_out += m.tier_swapouts;
  }
  EXPECT_EQ(stale, 0u);
  EXPECT_GE(failovers, 1u);
  // With a tier configured, every failover lands on the tier, not disk.
  EXPECT_EQ(tier_failovers, failovers);
  EXPECT_EQ(disk_out, 0u);
  EXPECT_GT(tier_out, 0u);
  EXPECT_GT(tier_in, 0u);
  CheckResidencyMirrors(e.system());
  // After the fabric heals the failback probe returns every cgroup to the
  // remote backend.
  for (std::size_t i = 0; i < e.system().app_count(); ++i)
    EXPECT_EQ(e.system().cgroup(i).backend(), SwapBackend::kRemote)
        << e.system().app_name(i);
}

// --- serial-vs-parallel differential ----------------------------------------

TEST(TierParallelDifferential, TieredPool4ByteIdenticalAt1_2_8Threads) {
  // The tier is root-LP-owned state, so tiered pooled runs stay eligible
  // for the parallel DES engine and must be byte-identical to serial.
  SystemConfig base = SystemConfig::CanvasFull();
  base.remote = remote::PoolConfig::FromName("pool4");
  base.tier = tier::TierConfig::FromName("cxl");

  auto run = [&](unsigned threads) {
    SystemConfig cfg = base;
    cfg.sim_threads = threads;
    Experiment e(cfg, Corun(0.05, 7));
    EXPECT_TRUE(e.Run());
    struct {
      bool parallel;
      std::string json;
    } r{e.parallel(), std::string()};
    std::ostringstream os;
    WriteJson(os, e.system(), "differential");
    r.json = os.str();
    return r;
  };

  auto serial = run(1);
  EXPECT_FALSE(serial.parallel);
  for (unsigned threads : {2u, 8u}) {
    auto par = run(threads);
    EXPECT_TRUE(par.parallel) << threads;
    EXPECT_EQ(par.json, serial.json) << threads;
  }
}

}  // namespace
}  // namespace canvas::core
