// Behaviour-scheduled pointer chasing (DESIGN.md §16).
//
// The workload class where page-granular demand swapping is weakest and
// object-granular cooperative swapping is strongest: Neo4j/GraphX-style
// graph traversal with near-zero spatial locality *across* objects. Work is
// structured as behaviours — each one a bounded BFS over the object graph
// from a seeded start object, with configurable fanout and depth — and the
// read-set of every behaviour is a pure function of (seed, behaviour index),
// so it can be peeked ahead of dispatch without consuming the stream.
//
// In page mode the same accesses demand-fault one dependent RTT at a time
// (the object sequence is data-dependent, so readahead/Leap see noise); in
// object mode the behaviour scheduler fetches each read-set as one batch
// before dispatch, turning depth x fanout serial faults into ~one RTT.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "object/registry.h"
#include "workload/apps.h"
#include "workload/patterns.h"
#include "workload/workload.h"

namespace canvas::workload {

/// A heap of fixed-size objects laid out contiguously over a page region,
/// with a seeded random object-reference graph. Registered three ways:
/// the region enters RuntimeInfo's large-array table, the registry imports
/// that table split into object-sized spans (the §16 layering), and the
/// object-to-object edges are recorded in the summary graph.
class ObjectHeap {
 public:
  ObjectHeap(Region region, std::uint32_t object_pages,
             std::uint32_t out_degree, std::uint64_t seed,
             runtime::RuntimeInfo* info, object::ObjectRegistry* registry);

  std::size_t object_count() const { return handles_.size(); }
  std::uint32_t object_pages() const { return object_pages_; }
  std::uint32_t out_degree() const { return out_degree_; }
  object::ObjectHandle handle(std::size_t obj) const { return handles_[obj]; }
  PageId first_page(std::size_t obj) const {
    return region_.start + PageId(obj) * object_pages_;
  }
  /// j-th out-neighbour of `obj` (deterministic hash adjacency).
  std::size_t Neighbor(std::size_t obj, std::uint32_t j) const;

 private:
  Region region_;
  std::uint32_t object_pages_;
  std::uint32_t out_degree_;
  std::uint64_t seed_;
  std::vector<object::ObjectHandle> handles_;
};

/// One thread's behaviour-structured traversal over an ObjectHeap.
class BehaviourChaseStream : public ThreadStream {
 public:
  struct Params {
    const ObjectHeap* heap = nullptr;
    /// Behaviours this thread runs.
    std::uint64_t behaviours = 0;
    /// BFS expansion per object and level count below the root.
    std::uint32_t fanout = 3;
    std::uint32_t depth = 2;
    /// Read-set cap (objects) per behaviour.
    std::size_t max_objects = 24;
    std::uint32_t compute_ns = 180;
    double write_fraction = 0.1;
    std::uint64_t seed = 1;
  };

  explicit BehaviourChaseStream(Params p);

  std::optional<Access> Next() override;
  bool PeekBehaviour(std::size_t idx,
                     std::vector<object::ObjectHandle>& out) override;
  std::uint64_t NextBehaviour() override;

 private:
  /// Read-set (object indices, BFS order) of behaviour `b` — stateless.
  void ReadSetOf(std::uint64_t b, std::vector<std::size_t>& out) const;
  /// Materialize the page list of the current behaviour if needed; returns
  /// false when the stream is finished.
  bool Ensure();

  Params p_;
  Rng rng_;
  std::uint64_t cur_ = 0;           // current behaviour index
  std::vector<PageId> pages_;       // current behaviour's access list
  std::size_t pos_ = 0;
  bool materialized_ = false;
};

/// Factory: the `chase` application (native, pointer-chasing, behaviour-
/// structured). Page-granular systems run it demand-faulting; with
/// SystemConfig::objects.enabled the core schedules its behaviours
/// cooperatively. Registered in MakeByName as "chase".
AppWorkload MakeChase(AppParams p = {});

}  // namespace canvas::workload
