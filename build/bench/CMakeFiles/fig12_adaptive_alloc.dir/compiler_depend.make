# Empty compiler generated dependencies file for fig12_adaptive_alloc.
# This may be replaced when dependencies are built.
