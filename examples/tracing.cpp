// Tracing & telemetry demo (DESIGN.md §9).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/tracing [scale]
//
// Runs a Canvas co-run with tracing enabled, prints per-cgroup fault-stall
// latency percentiles from the always-on histograms, then writes
//   canvas_trace.json    Chrome trace-event JSON -> open in ui.perfetto.dev
//   canvas_counters.csv  per-cgroup counter time series (ts_ns,track,counter,value)
// See EXPERIMENTS.md "Tracing a co-run in Perfetto" for a reading guide.
#include <cstdio>
#include <fstream>
#include <string>

#include "common/table.h"
#include "core/experiment.h"
#include "core/report.h"
#include "trace/export.h"
#include "workload/apps.h"

using namespace canvas;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.1;

  PrintBanner("Tracing a Canvas co-run (scale " +
              TablePrinter::Num(scale, 2) + ")");

  workload::AppParams params;
  params.scale = scale;
  std::vector<core::AppSpec> apps;
  for (const char* n : {"spark-lr", "snappy", "memcached"}) {
    auto w = workload::MakeByName(n, params);
    auto cg = workload::CgroupFor(w, 0.25, 4);
    apps.push_back(core::AppSpec{std::move(w), std::move(cg)});
  }

  auto cfg = core::SystemConfig::CanvasFull();
  cfg.trace.enabled = true;  // the only switch tracing needs

  core::Experiment exp(std::move(cfg), std::move(apps));
  bool finished = exp.Run();
  const core::SwapSystem& sys = exp.system();

  TablePrinter table({"app", "runtime", "faults", "fault p50", "fault p99",
                      "fault p99.9"});
  for (std::size_t i = 0; i < sys.app_count(); ++i) {
    const auto& m = sys.metrics(i);
    table.AddRow({m.name,
                  finished ? FormatTime(m.finish_time) : "(did not finish)",
                  std::to_string(m.faults),
                  FormatTime(SimTime(m.fault_latency.Percentile(50))),
                  FormatTime(SimTime(m.fault_latency.Percentile(99))),
                  FormatTime(SimTime(m.fault_latency.Percentile(99.9)))});
  }
  table.Print();

  const auto& buf = sys.tracer().buffer();
  std::printf("\ntrace ring: %zu records retained (%llu dropped to wrap)\n",
              buf.size(), (unsigned long long)buf.dropped());

  {
    std::ofstream f("canvas_trace.json");
    trace::WriteChromeTrace(f, sys.tracer(), sys.AppNames());
  }
  {
    std::ofstream f("canvas_counters.csv");
    trace::WriteCounterCsv(f, sys.tracer(), sys.AppNames());
  }
  std::puts("wrote canvas_trace.json  -> load at https://ui.perfetto.dev");
  std::puts("wrote canvas_counters.csv");
  return 0;
}
