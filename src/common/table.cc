#include "common/table.h"

#include <cstdio>
#include <iostream>

namespace canvas {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += cells[c];
      out.append(widths[c] - cells[c].size() + 2, ' ');
    }
    out += '\n';
  };
  emit_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    rule.append(widths[c] + 2, c + 1 == headers_.size() ? '-' : '-');
  out += rule + '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void TablePrinter::Print() const { std::cout << ToString() << std::flush; }

void PrintBanner(const std::string& title) {
  std::cout << "\n== " << title << " ==\n";
}

}  // namespace canvas
