// Per-cgroup timeliness tracking (§5.3).
//
// Timeliness of a prefetch = time between the prefetch being issued and the
// page being accessed by the application. The scheduler keeps a sliding
// window of observed timeliness samples per cgroup; a prefetch whose
// estimated arrival would exceed the distribution's upper quantile is
// useless (the page will have been wanted already) and is dropped. The same
// threshold serves as the blocked-thread rescue timeout.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace canvas::sched {

class TimelinessTracker {
 public:
  struct Config {
    /// Threshold before any samples exist.
    SimDuration initial_threshold = 2 * kMillisecond;
    /// Quantile of the timeliness distribution used as the budget.
    double quantile = 0.9;
    /// Clamp range for the threshold. The floor guards against the
    /// survivor bias of timeliness samples (only used pages record one):
    /// too low and healthy prefetches get dropped, shrinking the sample
    /// pool further.
    SimDuration floor = kMillisecond;
    SimDuration ceiling = 20 * kMillisecond;
    std::size_t window = 256;
  };

  TimelinessTracker() : TimelinessTracker(Config{}) {}
  explicit TimelinessTracker(const Config& cfg) : cfg_(cfg) {}

  /// Record that a prefetched page was accessed `dt` after its prefetch was
  /// issued.
  void Record(CgroupId cg, SimDuration dt);

  /// Current budget: a prefetch older than this (estimated at arrival) is
  /// too late to be useful.
  SimDuration Threshold(CgroupId cg) const;

  std::uint64_t samples(CgroupId cg) const;

  /// Drop `cg`'s sample window (tenant retirement; ids are recycled, so a
  /// new tenant must not inherit the previous owner's distribution).
  void Forget(CgroupId cg) { states_.erase(cg); }

 private:
  struct State {
    std::vector<SimDuration> ring;
    std::size_t next = 0;
    std::uint64_t count = 0;
  };

  Config cfg_;
  std::unordered_map<CgroupId, State> states_;
};

}  // namespace canvas::sched
