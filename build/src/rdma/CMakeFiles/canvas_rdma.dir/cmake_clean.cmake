file(REMOVE_RECURSE
  "CMakeFiles/canvas_rdma.dir/nic.cc.o"
  "CMakeFiles/canvas_rdma.dir/nic.cc.o.d"
  "libcanvas_rdma.a"
  "libcanvas_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canvas_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
