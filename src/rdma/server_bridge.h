// ServerBridge: cross-LP dispatch between the root LP (NIC/scheduler/cgroup
// domain) and per-memory-server LPs of the parallel DES engine.
//
// In the serial engine the NIC folds the destination server's service model
// (ServerPool::BeginService) into the completion time synchronously and
// schedules the terminal event on the one global queue. Under the parallel
// engine each server owns an LP, and the fold runs there instead:
//
//   root LP, dispatch at d:  reserve seq X from the root queue's insertion
//     counter (exactly where the serial engine's ScheduleAt would have
//     assigned it), then send BeginService(args) to the server LP on the
//     forward channel (lookahead 0, when = d).
//   server LP, at d:  run the fold against its private link state — the
//     same call sequence in the same order as the serial engine, because
//     forward-channel rank order equals root execution order — and send the
//     computed completion time c back (when = c, seq = X).
//   root LP, at (c, X):  the completion executes at exactly the rank the
//     serial terminal event had, so the root event stream — and therefore
//     every report byte — is identical at any thread count.
//   root LP, inside the completion:  send EndService as a message on the
//     same forward channel (when = c), keeping the server's Begin/End call
//     order identical to the serial engine's global order.
//
// The back channel's lookahead is nic.base_latency + server.base_latency:
// BeginService can never return a completion earlier than dispatch plus
// both fixed latencies, which is the conservative promise the engine
// synchronizes on (DESIGN.md §12).
//
// The bridge requires the healthy fast path: no fault injector (the
// injector's RNG draws are consumed conditionally on the fold result, which
// would order the stream nondeterministically) and tracing off (the sampler
// reads server-LP-owned fields). SwapSystem::EnableParallelServers enforces
// this and silently keeps the serial path otherwise.
#pragma once

#include <cstdint>
#include <vector>

#include "rdma/request.h"
#include "sim/parallel.h"

namespace canvas::remote {
class ServerPool;
}

namespace canvas::rdma {

class Nic;

class ServerBridge {
 public:
  /// Builds the LP topology on `par`: LP 0 wraps `root` (the Experiment's
  /// simulator, so all component references stay valid), plus one LP and a
  /// forward/back channel pair per pool server. Must run before the
  /// engine's first RunUntil.
  ServerBridge(sim::ParallelSimulator& par, sim::Simulator& root, Nic& nic,
               remote::ServerPool& pool);

  /// Root LP, NIC dispatch path. Takes ownership of `req` (routed to
  /// `req->server` >= 0); `start` is the NIC lane serialization end and
  /// `completion` the pre-fold completion estimate, exactly the arguments
  /// the serial path hands to ServerPool::BeginService.
  void DispatchAsync(RequestPtr req, Direction dir, SimTime start,
                     SimTime completion);

  /// Root LP, from inside a completion event: balance the server's inflight
  /// depth in server-LP order (the serial engine's EndService call site).
  void NotifyEndService(std::int32_t server);

 private:
  struct PerServer {
    sim::ParallelSimulator::ChannelId fwd = 0;   // root -> server
    sim::ParallelSimulator::ChannelId back = 0;  // server -> root
    std::uint64_t fwd_seq = 0;  // per-channel send tag (root-side only)
  };

  sim::ParallelSimulator& par_;
  sim::Simulator& root_;
  Nic& nic_;
  remote::ServerPool& pool_;
  std::vector<PerServer> servers_;
};

}  // namespace canvas::rdma
