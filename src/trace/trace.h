// Tracing & telemetry core (DESIGN.md §9).
//
// A Tracer records fixed-size binary TraceRecords — spans, instants and
// counters stamped with sim-time — into a preallocated ring buffer
// (TraceBuffer). The hot path is one enabled check plus a 40-byte store;
// nothing here schedules events or touches simulation state, so recording
// can never perturb event order (the determinism suite asserts reports are
// byte-identical with tracing on and off).
//
// Track model (mirrors the Chrome trace-event pid/tid scheme):
//   pid = application index           tid = 0      cgroup-level track
//                                     tid = 1+tid  one track per sim thread
//   pid = kRdmaPid (fabric)           tid = 0/1    ingress / egress lane
//                                     tid = 2      control (blackout) events
//
// Span begin/end times are carried by the caller (the swap stack already
// timestamps every request and stall), so spans are written as one record
// at end time — there is no open-span table and no allocation.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace canvas::trace {

/// Interned record names. Spans and instants use the lifecycle names;
/// counters use the sampler names. NameString() maps to the exported label.
enum class Name : std::uint16_t {
  // --- page-fault lifecycle spans ---
  kFault,            ///< whole fault stall of one thread (outermost span)
  kSwapCacheLookup,  ///< trap + swap-cache lookup (fault_entry_cost)
  kRdmaQueue,        ///< request created -> dispatched (scheduler queueing)
  kRdmaDma,          ///< request dispatched -> completion (DMA + wire)
  kMap,              ///< mapping a swap-cache page into the page table
  kWire,             ///< per-lane serialization occupancy (NIC track)
  // --- instants ---
  kAllocWait,        ///< swap-entry allocation finished; arg = wait+hold ns
  kSwapOutIssue,     ///< writeback issued; arg = page
  kRescue,           ///< blocked-thread rescue demand issued (§5.3)
  kWake,             ///< in-flight page resolved; arg = #waiters woken
  kPrefetchIssue,    ///< prefetch enqueued; arg = page
  kPrefetchHit,      ///< prefetched page mapped before release; arg = page
  kPrefetchDiscard,  ///< stale prefetch discarded itself (§5.3); arg = page
  kPrefetchDrop,     ///< prefetch dropped (scheduler/drain); arg = page
  kRetry,            ///< NIC retry scheduled; arg = backoff ns
  kTimeoutEvt,       ///< attempt died by timeout
  kCqeErrorEvt,      ///< attempt died by CQE error
  kExhaustedEvt,     ///< retry budget exhausted; request handed to issuer
  kFailover,         ///< cgroup failed over to the local disk
  kFailback,         ///< cgroup failed back to the remote path
  kServerDown,       ///< memory-server blackout began
  kServerUp,         ///< memory-server blackout ended
  // --- remote memory-server pool (DESIGN.md §11) ---
  kMigrateSpan,      ///< live slab migration bulk copy (source server track)
  kSlabPlaceEvt,     ///< slab placed on a server; arg = slab index
  kSlabToDiskEvt,    ///< slab evicted to the disk backend; arg = slab index
  kHarvestEvt,       ///< producer reclaimed capacity; arg = slabs taken
  // --- sampler counters (per-cgroup time series) ---
  kRssPages,          ///< resident pages
  kCachePages,        ///< swap-cache pages charged
  kCacheHitRatio,     ///< cumulative faults_minor / faults
  kPrefetchAccuracy,  ///< cumulative prefetch accuracy (pct)
  kQueueDepth,        ///< requests queued in the dispatch scheduler
  kBandwidthIngress,  ///< bytes/sec over the last sample period
  kBandwidthEgress,   ///< bytes/sec over the last sample period
  // --- per-server counters (remote pool; tid = server id) ---
  kServerInflight,    ///< requests dispatched to the server, not yet done
  kServerSlabs,       ///< slabs currently homed on the server
  kNumNames,
};

const char* NameString(Name n);

enum class RecordType : std::uint8_t { kSpan, kInstant, kCounter };

/// Synthetic pid for the RDMA fabric tracks (lane occupancy, retries,
/// blackout control events). Large enough to never collide with app indices.
inline constexpr std::uint32_t kRdmaPid = 0xFFFF'0000u;
/// tid of the per-application cgroup-level track (threads use 1 + ThreadId).
inline constexpr std::uint32_t kCgroupTrack = 0;
/// tid of the fabric control track under kRdmaPid.
inline constexpr std::uint32_t kFabricControlTrack = 2;
/// Synthetic pid for the remote memory-server pool; tid = server id.
inline constexpr std::uint32_t kRemotePoolPid = 0xFFFF'0001u;

/// One fixed-size binary record. Counters store their double value
/// bit-cast into `arg`.
struct TraceRecord {
  SimTime ts = 0;        ///< begin time (spans) or event time
  SimDuration dur = 0;   ///< span duration; 0 for instants/counters
  std::uint64_t arg = 0; ///< page id / count / bit-cast counter value
  std::uint32_t pid = 0; ///< process track (app index or kRdmaPid)
  std::uint32_t tid = 0; ///< thread track within the pid
  Name name = Name::kFault;
  RecordType type = RecordType::kInstant;

  double CounterValue() const { return std::bit_cast<double>(arg); }
};

/// Preallocated fixed-record ring. When full, Push overwrites the oldest
/// record and counts it as dropped — memory stays bounded and the most
/// recent history (what a tail-latency investigation wants) survives.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity) : ring_(capacity) {}

  void Push(const TraceRecord& r) {
    if (ring_.empty()) {
      ++dropped_;
      return;
    }
    std::size_t slot = (head_ + size_) % ring_.size();
    if (size_ == ring_.size()) {
      // Overwrite the oldest record.
      ring_[head_] = r;
      head_ = (head_ + 1) % ring_.size();
      ++dropped_;
    } else {
      ring_[slot] = r;
      ++size_;
    }
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return ring_.size(); }
  /// Records lost to ring wrap (or to a zero-capacity ring).
  std::uint64_t dropped() const { return dropped_; }

  /// i = 0 is the oldest retained record.
  const TraceRecord& At(std::size_t i) const {
    return ring_[(head_ + i) % ring_.size()];
  }

  template <typename F>
  void ForEach(F&& f) const {
    for (std::size_t i = 0; i < size_; ++i) f(At(i));
  }

  void Clear() {
    head_ = size_ = 0;
    dropped_ = 0;
  }

 private:
  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Runtime configuration (a member of core::SystemConfig, so any experiment
/// can toggle tracing without rebuilding).
struct TraceConfig {
  bool enabled = false;
  /// Ring capacity in records (40 bytes each; the default retains ~10MB).
  std::size_t ring_capacity = std::size_t(1) << 18;
  /// Emit per-cgroup counter time series on the DES clock.
  bool sampler = true;
  SimDuration sample_period = kMillisecond;
};

/// The recording front-end. All methods are no-ops while disabled (one
/// predictable branch), and none of them allocate: the ring is sized once
/// when tracing is first enabled.
class Tracer {
 public:
  Tracer() : Tracer(TraceConfig{}) {}
  explicit Tracer(TraceConfig cfg)
      : cfg_(cfg), buf_(cfg.enabled ? cfg.ring_capacity : 0) {
    enabled_ = cfg.enabled;
  }

  bool enabled() const { return enabled_; }
  /// Runtime toggle. Enabling for the first time allocates the ring.
  void set_enabled(bool on) {
    if (on && buf_.capacity() == 0 && cfg_.ring_capacity > 0)
      buf_ = TraceBuffer(cfg_.ring_capacity);
    enabled_ = on;
  }
  const TraceConfig& config() const { return cfg_; }

  void Span(std::uint32_t pid, std::uint32_t tid, Name name, SimTime begin,
            SimTime end, std::uint64_t arg = 0) {
    if (!enabled_) return;
    buf_.Push({begin, end - begin, arg, pid, tid, name, RecordType::kSpan});
  }

  void Instant(std::uint32_t pid, std::uint32_t tid, Name name, SimTime ts,
               std::uint64_t arg = 0) {
    if (!enabled_) return;
    buf_.Push({ts, 0, arg, pid, tid, name, RecordType::kInstant});
  }

  void Counter(std::uint32_t pid, std::uint32_t tid, Name name, SimTime ts,
               double value) {
    if (!enabled_) return;
    buf_.Push({ts, 0, std::bit_cast<std::uint64_t>(value), pid, tid, name,
               RecordType::kCounter});
  }

  const TraceBuffer& buffer() const { return buf_; }
  void Clear() { buf_.Clear(); }

 private:
  TraceConfig cfg_;
  bool enabled_ = false;
  TraceBuffer buf_;
};

}  // namespace canvas::trace
