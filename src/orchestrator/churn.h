// Cluster-day churn driver (DESIGN.md §15): replays a pre-sampled
// workload::ChurnSchedule against one SwapSystem — arrival -> AddApp,
// departure -> RetireApp — on the DES clock, then snapshots a deterministic
// result. The schedule is pure data sampled before the run starts, so the
// whole simulation is bit-for-bit identical at any --jobs / --sim-threads
// count; wall clock and RSS live in a separate timing payload like the
// other sweep surfaces.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "orchestrator/scenario.h"
#include "workload/churn.h"

namespace canvas::orchestrator {

/// One fully resolved churn run.
struct ChurnRunSpec {
  std::size_t index = 0;
  std::string label;
  core::SystemConfig config;
  workload::ChurnSpec churn;
  SimTime deadline = 600 * kSecond;
};

/// Declarative churn-sweep surface: the shared axis block plus a harvest
/// axis (churn runs pair tenant arrival/departure with supply-side capacity
/// dynamics) and the churn timeline itself. Nesting order: system (outer)
/// -> topology -> tier -> harvest -> seed (inner). The seed axis is stamped
/// onto ChurnSpec::seed, re-sampling the whole arrival timeline per seed.
struct ChurnScenarioSpec : AxisSpec {
  ChurnScenarioSpec() { topologies = {"pool4"}; }

  /// Harvest-schedule axis, resolved via remote::HarvestConfig::FromName
  /// ("none" | "steady" | "bursty" | "closed-loop"). The default pairs
  /// churn with the supply/demand control loop.
  std::vector<std::string> harvests = {"closed-loop"};
  workload::ChurnSpec churn;

  std::size_t RunCount() const {
    return systems.size() * topologies.size() * tiers.size() *
           harvests.size() * seeds.size();
  }

  /// Expand the grid into ChurnRunSpecs, index-ordered. Throws
  /// std::invalid_argument on an unknown preset name.
  std::vector<ChurnRunSpec> Expand() const;
};

/// Label for one churn grid point, e.g. "canvas/pool4/closed-loop/seed7"
/// (the default "single" topology and "none" tier segments are omitted;
/// the harvest segment is always present).
std::string ChurnRunLabel(const std::string& system,
                          const std::string& topology,
                          const std::string& harvest, std::uint64_t seed,
                          const std::string& tier = "none");

/// Deterministic snapshot of one churn run. Every field above the timing
/// section is a pure function of the ChurnRunSpec.
struct ChurnResult {
  enum class Status : std::uint8_t {
    kOk,         ///< schedule fully replayed, every tenant drained + reaped
    kDeadline,   ///< deadline hit with tenants still live or unreaped
    kError,      ///< threw, or the pool slab audit failed; see `error`
    kCancelled,  ///< never dispatched (sweep cancelled first)
  };

  std::size_t index = 0;
  std::string label;
  std::string system;
  std::string topology;
  Status status = Status::kCancelled;
  std::string error;

  // --- deterministic payload ---
  std::uint64_t tenants_scheduled = 0;   ///< admitted into the schedule
  std::uint64_t tenants_started = 0;     ///< arrival events replayed
  std::uint64_t tenants_retired = 0;     ///< retired AND reaped
  std::uint64_t dropped_arrivals = 0;    ///< admission-control drops
  std::uint64_t schedule_high_water = 0; ///< peak live in the schedule
  std::uint64_t active_high_water = 0;   ///< peak live in the SwapSystem
  std::uint64_t active_at_end = 0;
  std::uint64_t pending_at_end = 0;
  std::uint64_t registry_slots = 0;          ///< CgroupRegistry::size()
  std::uint64_t registry_retired_total = 0;  ///< retire ops (incl. reuse)
  std::uint64_t accesses = 0;
  std::uint64_t faults = 0;
  std::uint64_t faults_major = 0;
  std::uint64_t swapouts = 0;
  std::uint64_t failovers = 0;
  std::uint64_t sched_drops = 0;
  std::uint64_t sim_events = 0;
  // Pool-side counters (zero when the topology has no server pool).
  bool pool = false;
  std::uint64_t partitions_released = 0;
  std::uint64_t slabs_released = 0;
  std::uint64_t harvest_events = 0;
  std::uint64_t control_ticks = 0;
  std::uint64_t control_harvests = 0;
  std::uint64_t control_returns = 0;

  // --- timing payload (never byte-stable) ---
  double wall_sec = 0;
  std::uint64_t peak_rss_bytes = 0;
  bool parallel = false;

  bool executed() const {
    return status == Status::kOk || status == Status::kDeadline;
  }
};

const char* ChurnStatusName(ChurnResult::Status s);

/// Execute one churn run in the calling thread: sample the schedule, build
/// an (initially empty) SwapSystem, replay arrivals/departures on the DES
/// clock, drain, audit the pool, snapshot.
ChurnResult RunChurn(const ChurnRunSpec& spec);

/// Churn-sweep aggregate: same index-slot contract as SweepResult — the
/// deterministic report depends only on the specs.
struct ChurnSweepResult {
  std::vector<ChurnResult> runs;  ///< spec-index order
  bool all_ok = false;
  bool cancelled = false;
  double wall_sec = 0;
  unsigned jobs = 1;

  /// include_timing=false -> byte-identical across jobs / thread counts.
  void WriteJson(std::ostream& os, bool include_timing = true) const;
};

}  // namespace canvas::orchestrator
