// Figure 11: effectiveness of isolation ALONE (per-cgroup partitions,
// caches, vertical RDMA fairness — no adaptive optimizations) for the
// native apps co-running with each managed app at 25% local memory.
// Paper result: isolation alone reduces running time up to 5.2x (avg 2.5x);
// Memcached improves 3.3x; RDMA utilization improves 2.8x (692 -> 1908MB/s,
// peak 4494MB/s); vertical WFQ achieves ~0.88 WMMR (§6.4.3).
#include "bench_util.h"

using namespace canvas;
using namespace canvas::bench;

int main() {
  double scale = ScaleFromEnv(0.25);

  PrintBanner("Figure 11: native-app slowdowns, co-run Linux vs co-run "
              "Canvas (isolation only)");
  TablePrinter table({"group", "app", "linux co-run", "isolation co-run",
                      "improvement"});
  double util_linux = 0, util_iso = 0, wmmr_iso = 0;
  int groups = 0;
  for (const std::string managed :
       {"spark-lr", "spark-km", "cassandra", "neo4j"}) {
    std::vector<std::string> names{managed, "snappy", "memcached", "xgboost"};
    std::vector<SimTime> solo;
    for (auto& n : names)
      solo.push_back(Solo(n, scale, 0.25, core::SystemConfig::Linux55()));

    core::Experiment lin(core::SystemConfig::Linux55(),
                         ManagedPlusNatives(managed, scale, 0.25));
    lin.Run();
    core::Experiment iso(core::SystemConfig::CanvasIsolation(),
                         ManagedPlusNatives(managed, scale, 0.25));
    iso.Run();
    util_linux +=
        lin.system().nic().bytes_series(rdma::Direction::kIngress).MeanRate();
    util_iso +=
        iso.system().nic().bytes_series(rdma::Direction::kIngress).MeanRate();
    wmmr_iso += iso.system().Wmmr(rdma::Direction::kIngress);
    ++groups;
    for (std::size_t i = 1; i < names.size(); ++i) {  // natives only
      double l = core::Slowdown(lin.FinishTime(i), solo[i]);
      double c = core::Slowdown(iso.FinishTime(i), solo[i]);
      table.AddRow({i == 1 ? managed + " group" : "", names[i], X(l), X(c),
                    c > 0 ? X(l / c) : "-"});
    }
  }
  table.Print();
  std::printf("\nAvg RDMA swap-in utilization: linux %.0fMB/s -> isolation "
              "%.0fMB/s (%.2fx; paper 2.8x)\n",
              util_linux / groups / 1e6, util_iso / groups / 1e6,
              util_iso / std::max(util_linux, 1.0));
  std::printf("Vertical scheduling WMMR: %.2f (paper ~0.88)\n",
              wmmr_iso / groups);
  return 0;
}
