#include "trace/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <set>

namespace canvas::trace {

namespace {

std::string PidName(std::uint32_t pid,
                    const std::vector<std::string>& app_names) {
  if (pid == kRdmaPid) return "rdma-fabric";
  if (pid < app_names.size()) return app_names[pid];
  return "app-" + std::to_string(pid);
}

std::string TidName(std::uint32_t pid, std::uint32_t tid) {
  if (pid == kRdmaPid) {
    if (tid == 0) return "ingress-lane";
    if (tid == 1) return "egress-lane";
    return "control";
  }
  if (tid == kCgroupTrack) return "cgroup";
  return "thread-" + std::to_string(tid - 1);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Chrome trace-event timestamps are microseconds; print with ns precision.
void PrintTs(std::ostream& os, SimTime ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u", ns / 1000,
                unsigned(ns % 1000));
  os << buf;
}

}  // namespace

void WriteChromeTrace(std::ostream& os, const Tracer& tracer,
                      const std::vector<std::string>& app_names) {
  const TraceBuffer& buf = tracer.buffer();
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";

  // Metadata events naming every track that appears in the ring.
  std::set<std::uint32_t> pids;
  std::set<std::pair<std::uint32_t, std::uint32_t>> tracks;
  buf.ForEach([&](const TraceRecord& r) {
    pids.insert(r.pid);
    tracks.insert({r.pid, r.tid});
  });
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  for (std::uint32_t pid : pids) {
    sep();
    os << "{\"ph\": \"M\", \"pid\": " << pid
       << ", \"name\": \"process_name\", \"args\": {\"name\": \""
       << JsonEscape(PidName(pid, app_names)) << "\"}}";
  }
  for (const auto& [pid, tid] : tracks) {
    sep();
    os << "{\"ph\": \"M\", \"pid\": " << pid << ", \"tid\": " << tid
       << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
       << JsonEscape(TidName(pid, tid)) << "\"}}";
  }

  buf.ForEach([&](const TraceRecord& r) {
    sep();
    os << "{\"pid\": " << r.pid << ", \"tid\": " << r.tid << ", \"ts\": ";
    PrintTs(os, r.ts);
    os << ", \"name\": \"" << NameString(r.name) << "\"";
    switch (r.type) {
      case RecordType::kSpan:
        os << ", \"ph\": \"X\", \"dur\": ";
        PrintTs(os, r.dur);
        os << ", \"args\": {\"arg\": " << r.arg << "}";
        break;
      case RecordType::kInstant:
        os << ", \"ph\": \"i\", \"s\": \"t\", \"args\": {\"arg\": " << r.arg
           << "}";
        break;
      case RecordType::kCounter: {
        char v[32];
        std::snprintf(v, sizeof v, "%.6g", r.CounterValue());
        os << ", \"ph\": \"C\", \"args\": {\"value\": " << v << "}";
        break;
      }
    }
    os << "}";
  });
  os << "\n]}\n";
}

void WriteCounterCsv(std::ostream& os, const Tracer& tracer,
                     const std::vector<std::string>& app_names) {
  os << "ts_ns,track,counter,value\n";
  tracer.buffer().ForEach([&](const TraceRecord& r) {
    if (r.type != RecordType::kCounter) return;
    char v[32];
    std::snprintf(v, sizeof v, "%.6g", r.CounterValue());
    os << r.ts << ',' << PidName(r.pid, app_names) << ','
       << NameString(r.name) << ',' << v << '\n';
  });
}

bool ValidateSpanNesting(const TraceBuffer& buf, std::string* error) {
  struct Interval {
    SimTime begin;
    SimTime end;
    Name name;
  };
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<Interval>>
      by_track;
  buf.ForEach([&](const TraceRecord& r) {
    if (r.type == RecordType::kSpan)
      by_track[{r.pid, r.tid}].push_back({r.ts, r.ts + r.dur, r.name});
  });
  for (auto& [track, spans] : by_track) {
    std::sort(spans.begin(), spans.end(),
              [](const Interval& a, const Interval& b) {
                if (a.begin != b.begin) return a.begin < b.begin;
                return a.end > b.end;  // parents before children
              });
    std::vector<SimTime> stack;  // open span end times
    for (const Interval& s : spans) {
      while (!stack.empty() && stack.back() <= s.begin) stack.pop_back();
      if (!stack.empty() && s.end > stack.back()) {
        if (error) {
          *error = "track (" + std::to_string(track.first) + "," +
                   std::to_string(track.second) + "): span '" +
                   NameString(s.name) + "' [" + std::to_string(s.begin) +
                   "," + std::to_string(s.end) +
                   ") straddles enclosing span end " +
                   std::to_string(stack.back());
        }
        return false;
      }
      stack.push_back(s.end);
    }
  }
  return true;
}

}  // namespace canvas::trace
