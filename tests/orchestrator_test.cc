// Tests for the sweep orchestrator (DESIGN.md §10): preset registry,
// scenario expansion, and the SweepEngine's determinism / cancellation /
// bounded-concurrency contracts. Runs under the `orchestrator` ctest
// label, including the ASan and TSan passes of scripts/check.sh.
#include <gtest/gtest.h>

#include <sstream>

#include "core/report.h"
#include "orchestrator/sweep.h"

namespace canvas::orchestrator {
namespace {

// Small but non-trivial grid: 2 systems x 2 seeds of a two-app co-run.
ScenarioSpec SmallScenario() {
  ScenarioSpec spec;
  spec.systems = {"linux", "canvas"};
  spec.apps = {core::AppBuild{"memcached"}, core::AppBuild{"snappy"}};
  spec.ratios = {0.25};
  spec.scales = {0.05};
  spec.seeds = {3, 9};
  return spec;
}

std::string Aggregate(const SweepResult& r) {
  std::ostringstream os;
  r.WriteJson(os, /*include_timing=*/false);
  return os.str();
}

TEST(Presets, FromNameResolvesCanonicalNamesAndAliases) {
  ASSERT_TRUE(core::SystemConfig::FromName("canvas"));
  EXPECT_EQ(core::SystemConfig::FromName("canvas")->name, "canvas");
  EXPECT_EQ(core::SystemConfig::FromName("linux")->name, "linux-5.5");
  EXPECT_EQ(core::SystemConfig::FromName("linux-5.5")->name, "linux-5.5");
  EXPECT_EQ(core::SystemConfig::FromName("leap")->name, "infiniswap+leap");
  EXPECT_EQ(core::SystemConfig::FromName("isolation")->name,
            "canvas-isolation");
  EXPECT_FALSE(core::SystemConfig::FromName("not-a-system"));
}

TEST(Presets, ListPresetsCoversEveryFactory) {
  const auto& presets = core::SystemConfig::ListPresets();
  ASSERT_EQ(presets.size(), 6u);
  for (const core::PresetInfo& p : presets) {
    auto cfg = core::SystemConfig::FromName(p.name);
    ASSERT_TRUE(cfg) << p.name;
    EXPECT_FALSE(p.description.empty());
    for (std::string_view alias : p.aliases) {
      auto via_alias = core::SystemConfig::FromName(alias);
      ASSERT_TRUE(via_alias) << alias;
      EXPECT_EQ(via_alias->name, cfg->name);
    }
  }
}

TEST(Scenario, ExpandProducesIndexOrderedGrid) {
  ScenarioSpec spec = SmallScenario();
  auto runs = spec.Expand();
  ASSERT_EQ(runs.size(), spec.RunCount());
  ASSERT_EQ(runs.size(), 4u);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].index, i);
    ASSERT_EQ(runs[i].exp.apps.size(), 2u);
    EXPECT_EQ(runs[i].exp.apps[0].name, "memcached");
  }
  // Nesting order: system outer, seed inner.
  EXPECT_EQ(runs[0].label, "linux/r0.25/s0.05/seed3");
  EXPECT_EQ(runs[1].label, "linux/r0.25/s0.05/seed9");
  EXPECT_EQ(runs[2].label, "canvas/r0.25/s0.05/seed3");
  EXPECT_EQ(runs[3].label, "canvas/r0.25/s0.05/seed9");
  EXPECT_EQ(runs[0].exp.apps[0].seed, 3u);
  EXPECT_EQ(runs[1].exp.apps[0].seed, 9u);
}

TEST(Scenario, OverridesApplyToEveryExpandedConfig) {
  ScenarioSpec spec = SmallScenario();
  spec.systems = {"canvas"};
  spec.overrides.adaptive_alloc = false;
  spec.overrides.prefetcher = core::PrefetcherKind::kReadahead;
  for (const RunSpec& r : spec.Expand()) {
    EXPECT_FALSE(r.exp.config.adaptive_alloc);
    EXPECT_EQ(r.exp.config.prefetcher, core::PrefetcherKind::kReadahead);
  }
}

TEST(Scenario, ExpandRejectsUnknownPreset) {
  ScenarioSpec spec = SmallScenario();
  spec.systems = {"linux", "bogus"};
  EXPECT_THROW(spec.Expand(), std::invalid_argument);
}

// Topology axis (DESIGN.md §11): each system expands once per topology,
// labels carry the topology only when it is not the default, and the
// resolved PoolConfig lands in every run's config.
TEST(Scenario, TopologyAxisExpandsAndLabels) {
  ScenarioSpec spec = SmallScenario();
  spec.systems = {"canvas"};
  spec.seeds = {3};
  spec.topologies = {"single", "pool2"};
  auto runs = spec.Expand();
  ASSERT_EQ(runs.size(), spec.RunCount());
  ASSERT_EQ(runs.size(), 2u);
  // The default topology stays invisible so pre-pool labels are unchanged;
  // non-default topologies are suffixed.
  EXPECT_EQ(runs[0].label, "canvas/r0.25/s0.05/seed3");
  EXPECT_EQ(runs[1].label, "canvas/r0.25/s0.05/seed3/pool2");
  EXPECT_FALSE(runs[0].exp.config.remote.enabled());
  ASSERT_TRUE(runs[1].exp.config.remote.enabled());
  EXPECT_EQ(runs[1].exp.config.remote.servers.size(), 2u);

  spec.topologies = {"mesh16"};
  EXPECT_THROW(spec.Expand(), std::invalid_argument);
}

// Pooled runs obey the same determinism contract as the rest of the sweep:
// the aggregate is byte-identical for any worker-thread count.
TEST(SweepEngine, TopologySweepAggregateByteIdenticalAcrossJobs) {
  ScenarioSpec spec = SmallScenario();
  spec.systems = {"canvas"};
  spec.seeds = {3};
  spec.topologies = {"single", "pool2", "pool4-harvest"};

  SweepOptions serial;
  serial.jobs = 1;
  SweepEngine serial_engine(serial);
  auto r1 = serial_engine.Run(spec);

  SweepOptions parallel;
  parallel.jobs = 2;
  SweepEngine parallel_engine(parallel);
  auto r2 = parallel_engine.Run(spec);

  EXPECT_TRUE(r1.all_ok);
  ASSERT_EQ(r1.runs.size(), 3u);
  EXPECT_EQ(Aggregate(r1), Aggregate(r2));
}

// The engine's core contract: the aggregated report is a pure function of
// the spec list — byte-identical for any worker-thread count.
TEST(SweepEngine, AggregateByteIdenticalAcrossThreadCounts) {
  ScenarioSpec spec = SmallScenario();

  SweepOptions serial;
  serial.jobs = 1;
  SweepEngine serial_engine(serial);
  auto r1 = serial_engine.Run(spec);

  SweepOptions parallel;
  parallel.jobs = 8;
  SweepEngine parallel_engine(parallel);
  auto r2 = parallel_engine.Run(spec);

  EXPECT_TRUE(r1.all_ok);
  EXPECT_TRUE(r2.all_ok);
  EXPECT_EQ(Aggregate(r1), Aggregate(r2));
}

// Per-run determinism: the same spec executed twice gives identical
// results (finish times, faults, event counts).
TEST(SweepEngine, SeededRunsAreDeterministic) {
  auto runs = SmallScenario().Expand();
  RunResult a = SweepEngine::ExecuteOne(runs[1]);
  RunResult b = SweepEngine::ExecuteOne(runs[1]);
  ASSERT_EQ(a.status, RunResult::Status::kOk);
  ASSERT_EQ(b.status, RunResult::Status::kOk);
  ASSERT_EQ(a.apps.size(), b.apps.size());
  EXPECT_EQ(a.sim_events, b.sim_events);
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_EQ(a.apps[i].metrics.finish_time, b.apps[i].metrics.finish_time);
    EXPECT_EQ(a.apps[i].metrics.faults, b.apps[i].metrics.faults);
    EXPECT_EQ(a.apps[i].metrics.swapouts, b.apps[i].metrics.swapouts);
  }
  // Different seed, different run.
  RunResult c = SweepEngine::ExecuteOne(runs[0]);
  EXPECT_TRUE(c.sim_events != a.sim_events ||
              c.apps[0].metrics.finish_time != a.apps[0].metrics.finish_time);
}

// Aggregates include the label/status even for runs that miss their
// deadline, and all_ok reflects the failure.
TEST(SweepEngine, DeadlineMissIsReportedNotDropped) {
  ScenarioSpec spec = SmallScenario();
  spec.systems = {"canvas"};
  spec.seeds = {3};
  spec.deadline = 1 * kMillisecond;  // nothing finishes in 1ms of sim time
  SweepEngine engine;
  auto r = engine.Run(spec);
  ASSERT_EQ(r.runs.size(), 1u);
  EXPECT_EQ(r.runs[0].status, RunResult::Status::kDeadline);
  EXPECT_FALSE(r.all_ok);
  EXPECT_NE(Aggregate(r).find("\"status\": \"deadline\""), std::string::npos);
}

TEST(SweepEngine, ErrorRunCapturesExceptionMessage) {
  std::vector<RunSpec> specs(1);
  specs[0].index = 0;
  specs[0].label = "bad";
  specs[0].exp.config = core::SystemConfig::CanvasFull();
  specs[0].exp.apps = {core::AppBuild{"no-such-app"}};
  SweepEngine engine;
  auto r = engine.Run(std::move(specs));
  ASSERT_EQ(r.runs.size(), 1u);
  EXPECT_EQ(r.runs[0].status, RunResult::Status::kError);
  EXPECT_NE(r.runs[0].error.find("no-such-app"), std::string::npos);
  EXPECT_FALSE(r.all_ok);
}

// cancel_on_failure with one worker: the first run fails (tiny deadline),
// so nothing after it may be dispatched.
TEST(SweepEngine, CancellationStopsDispatchSerially) {
  ScenarioSpec spec = SmallScenario();  // 4 runs
  spec.deadline = 1 * kMillisecond;     // every run fails fast
  SweepOptions opts;
  opts.jobs = 1;
  opts.cancel_on_failure = true;
  SweepEngine engine(opts);
  auto r = engine.Run(spec);
  EXPECT_TRUE(r.cancelled);
  ASSERT_EQ(r.runs.size(), 4u);
  EXPECT_EQ(r.runs[0].status, RunResult::Status::kDeadline);
  for (std::size_t i = 1; i < r.runs.size(); ++i) {
    EXPECT_EQ(r.runs[i].status, RunResult::Status::kCancelled);
    EXPECT_EQ(r.runs[i].label, spec.Expand()[i].label);  // slot kept
  }
}

// With a pool, cancellation still guarantees the sweep flags the failure
// and stops dispatching once observed (some in-flight runs may complete).
TEST(SweepEngine, CancellationWithPoolStopsEarly) {
  ScenarioSpec spec = SmallScenario();
  spec.deadline = 1 * kMillisecond;
  SweepOptions opts;
  opts.jobs = 2;
  opts.cancel_on_failure = true;
  SweepEngine engine(opts);
  auto r = engine.Run(spec);
  EXPECT_TRUE(r.cancelled);
  EXPECT_FALSE(r.all_ok);
  std::size_t executed = 0;
  for (const RunResult& run : r.runs)
    if (run.executed()) ++executed;
  EXPECT_LT(executed, r.runs.size());
}

// max_live bounds the number of concurrently constructed swap systems
// even when the pool is wider.
TEST(SweepEngine, BoundedConcurrencyRespectsMaxLive) {
  ScenarioSpec spec = SmallScenario();  // 4 runs
  SweepOptions opts;
  opts.jobs = 8;
  opts.max_live = 2;
  SweepEngine engine(opts);
  auto r = engine.Run(spec);
  EXPECT_TRUE(r.all_ok);
  EXPECT_GE(engine.live_high_water(), 1u);
  EXPECT_LE(engine.live_high_water(), 2u);
}

// The sweep JSON is schema-versioned like every other machine-readable
// report surface.
TEST(SweepEngine, SweepJsonCarriesSchemaVersion) {
  ScenarioSpec spec = SmallScenario();
  spec.systems = {"linux"};
  spec.seeds = {3};
  SweepEngine engine;
  auto r = engine.Run(spec);
  std::ostringstream with_timing;
  r.WriteJson(with_timing, /*include_timing=*/true);
  std::string s = with_timing.str();
  EXPECT_NE(s.find("\"schema_version\": " +
                   std::to_string(core::kReportSchemaVersion)),
            std::string::npos);
  EXPECT_NE(s.find("\"timing\""), std::string::npos);
  EXPECT_NE(s.find("\"peak_rss_bytes\""), std::string::npos);
  // Balanced braces / brackets (cheap well-formedness proxy).
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
            std::count(s.begin(), s.end(), '}'));
  EXPECT_EQ(std::count(s.begin(), s.end(), '['),
            std::count(s.begin(), s.end(), ']'));
  EXPECT_EQ(Aggregate(r).find("\"timing\""), std::string::npos);
}

}  // namespace
}  // namespace canvas::orchestrator
