file(REMOVE_RECURSE
  "CMakeFiles/canvas_swapalloc.dir/cluster.cc.o"
  "CMakeFiles/canvas_swapalloc.dir/cluster.cc.o.d"
  "CMakeFiles/canvas_swapalloc.dir/freelist.cc.o"
  "CMakeFiles/canvas_swapalloc.dir/freelist.cc.o.d"
  "CMakeFiles/canvas_swapalloc.dir/partition.cc.o"
  "CMakeFiles/canvas_swapalloc.dir/partition.cc.o.d"
  "CMakeFiles/canvas_swapalloc.dir/reservation.cc.o"
  "CMakeFiles/canvas_swapalloc.dir/reservation.cc.o.d"
  "libcanvas_swapalloc.a"
  "libcanvas_swapalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canvas_swapalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
