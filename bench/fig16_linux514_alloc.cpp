// Figure 16 (Appendix B): swap-entry allocation on a RAMDisk-like backend
// (no RDMA bottleneck), Memcached with 8-48 cores: Canvas's reservation
// scheme vs the Linux 5.14 cluster+batch allocator vs Linux 5.5. Paper
// result: the 5.14 patches scale poorly past 24 cores (core collision);
// Canvas's per-entry cost stays low and flat — 13x better at 48 cores.
#include "bench_util.h"

using namespace canvas;
using namespace canvas::bench;

namespace {

struct Point {
  double alloc_rate_kps;
  double per_entry_us;   // mean lock-path allocation latency
  double per_swapout_us; // alloc time amortized over all swap-outs
};

Point RunOne(core::SystemConfig cfg, std::uint32_t cores, double scale) {
  // RAMDisk model: extremely fast backend so allocation is the bottleneck.
  cfg.nic.bandwidth_bytes_per_sec = 100e9;
  cfg.nic.base_latency = 300;  // 0.3us
  workload::AppParams p;
  p.scale = scale;
  p.threads = cores;
  p.seed = SeedFromEnv();
  auto w = workload::MakeMemcached(p);
  auto cg = workload::CgroupFor(w, 0.25, cores);
  std::vector<core::AppSpec> apps;
  apps.push_back(core::AppSpec{std::move(w), std::move(cg)});
  core::Experiment e(cfg, std::move(apps));
  e.Run();
  const auto& m = e.system().metrics(0);
  SimTime t = m.finish_time ? m.finish_time : kSecond;
  return {double(m.allocations) * double(kSecond) / double(t) / 1e3,
          e.system().partition(0).allocator().alloc_latency().Mean() /
              double(kMicrosecond),
          m.swapouts ? double(m.alloc_time) / double(m.swapouts) /
                           double(kMicrosecond)
                     : 0.0};
}

}  // namespace

int main() {
  double scale = ScaleFromEnv(0.4);

  auto linux55 = core::SystemConfig::Linux55();
  linux55.allocator = swapalloc::AllocatorKind::kFreelist;

  auto linux514 = core::SystemConfig::Linux55();
  linux514.allocator = swapalloc::AllocatorKind::kClusterBatch;
  linux514.name = "linux-5.14";

  auto canvas = core::SystemConfig::CanvasFull();

  PrintBanner("Figure 16: allocator scaling on RAMDisk-like backend, "
              "Memcached, 8-48 cores");
  TablePrinter table({"cores", "canvas alloc K/s", "canvas amortized",
                      "5.14 alloc K/s", "5.14 amortized", "5.5 alloc K/s",
                      "5.5 amortized"});
  double canvas48 = 0, l514_48 = 0;
  for (std::uint32_t cores : {8u, 16u, 24u, 32u, 40u, 48u}) {
    Point c = RunOne(canvas, cores, scale);
    Point b = RunOne(linux514, cores, scale);
    Point f = RunOne(linux55, cores, scale);
    if (cores == 48) {
      canvas48 = c.per_swapout_us;
      l514_48 = b.per_swapout_us;
    }
    table.AddRow({std::to_string(cores),
                  TablePrinter::Num(c.alloc_rate_kps, 0),
                  TablePrinter::Num(c.per_swapout_us, 2) + "us",
                  TablePrinter::Num(b.alloc_rate_kps, 0),
                  TablePrinter::Num(b.per_swapout_us, 2) + "us",
                  TablePrinter::Num(f.alloc_rate_kps, 0),
                  TablePrinter::Num(f.per_swapout_us, 2) + "us"});
  }
  table.Print();
  std::printf("\nPer-entry cost at 48 cores, linux-5.14 / canvas: %.1fx "
              "(paper: 13x)\n",
              l514_48 / std::max(canvas48, 1e-9));
  return 0;
}
