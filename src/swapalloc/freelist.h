// Single-lock free-list allocator (Linux <= 5.5 / Infiniswap era).
//
// All allocations serialize on one mutex; the critical-section length grows
// with partition utilization because the free-list scan must skip more
// allocated entries to find a free one. Combined with SimMutex's contention
// penalty this produces the throughput collapse of the paper's Figure 4(b).
#pragma once

#include <vector>

#include "sim/sim_mutex.h"
#include "swapalloc/allocator.h"

namespace canvas::swapalloc {

class FreelistAllocator : public SwapEntryAllocator {
 public:
  struct Config {
    /// Uncontended allocation critical section at an empty partition.
    SimDuration base_hold = 1500;  // 1.5us
    /// Scan-lengthening coefficient as the partition fills.
    double scan_coeff = 1.5;
    /// Cap on the modeled critical section.
    SimDuration max_hold = 25 * kMicrosecond;
    /// SimMutex cacheline-bouncing factor.
    double contention_alpha = 0.15;
  };

  FreelistAllocator(sim::Simulator& sim, std::uint64_t capacity, Config cfg);

  void Allocate(CoreId core, Done done) override;
  void Free(SwapEntryId entry) override;

  std::uint64_t capacity() const override { return capacity_; }
  std::uint64_t used() const override { return used_; }

  const sim::SimMutex& mutex() const { return mutex_; }

  /// Modeled critical-section length at the current utilization.
  SimDuration CurrentHold() const;

 private:
  sim::Simulator& sim_;
  std::uint64_t capacity_;
  Config cfg_;
  sim::SimMutex mutex_;
  std::uint64_t used_ = 0;
  std::vector<SwapEntryId> free_;  // stack of free entries
};

}  // namespace canvas::swapalloc
