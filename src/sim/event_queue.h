// Purpose-built event queue for the DES hot path.
//
// A hierarchical timing wheel bucketed by near-future time (the ladder-queue
// family), with a small 4-ary heap as far-future overflow. Five levels of
// 256 slots each cover a 2^40 ns (~18 simulated minutes) horizon; level 0
// buckets are single-tick exact, level k slots span 256^k ticks. An event's
// level is the highest byte in which its deadline differs from the wheel
// cursor, so push, pop, and advance are all O(1) bit operations — there is
// no per-event sift at any queue depth, which is what makes this beat a
// binary heap of fat events at co-run depth (~2000 pending events).
//
// Events live in pooled, chunk-allocated nodes (stable addresses: a nested
// Push during callback execution can never relocate a live closure frame,
// so the simulator invokes callbacks in place — no pop-side copy). Buckets
// are intrusive FIFO lists threaded through the nodes; freed nodes are
// recycled, so steady-state operation performs no allocation.
//
// Determinism invariant: events are delivered in strictly ascending
// (when, insertion-seq) order, where seq is assigned at Push() time. Two
// events at the same instant always fire in the order they were scheduled.
// The wheel needs no comparisons to guarantee this: same-instant events
// share every digit, so they land in the same bucket at every level, and
// FIFO append order — preserved verbatim by cascades and by the (when, seq)
// ordered overflow-heap migration — is insertion order.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "sim/inline_callback.h"

namespace canvas::sim {

class EventQueue {
 public:
  /// A popped event: the instant it fires and the node holding its callback.
  /// Invoke via Callback(node), then recycle with Release(node).
  struct Popped {
    SimTime when;
    std::uint32_t node;
  };

  /// Rank of the earliest pending event, without unlinking it. The parallel
  /// engine merges each LP's local queue against cross-LP staging heaps by
  /// explicit (when, seq) comparison, so the head's insertion seq must be
  /// observable (Pop itself never needs it: local FIFO order == seq order).
  struct Head {
    SimTime when;
    std::uint64_t seq;
  };

  EventQueue() {
    for (unsigned l = 0; l < kLevels; ++l)
      for (unsigned s = 0; s < kSlots; ++s) head_[l][s] = tail_[l][s] = kNil;
  }
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  void Push(SimTime when, InlineCallback&& cb) {
    const std::uint32_t n = AllocNode();
    Node& nd = NodeAt(n);
    nd.when = when;
    nd.cb = std::move(cb);
    ++count_;
    const std::uint64_t seq = next_seq_++;
    nd.seq = seq;
    if (when < cur_) {
      // Only possible after RunUntil stopped at a deadline earlier than the
      // next event (cursor already advanced) and the caller scheduled new
      // work before resuming. Rare; kept in a small sorted side list that
      // always precedes the wheel contents.
      auto it = backlog_.begin() + long(bi_);
      while (it != backlog_.end() && it->when <= when) ++it;
      backlog_.insert(it, BacklogEntry{when, n});
    } else {
      Place(n, when, seq);
    }
  }

  /// Earliest scheduled instant. Advances the wheel cursor (cascading
  /// higher-level slots as needed), hence non-const. Only valid on !empty().
  SimTime MinTime() {
    assert(count_ > 0);
    if (bi_ < backlog_.size()) return backlog_[bi_].when;
    const unsigned b0 = unsigned(cur_) & kSlotMask;
    if (head_[0][b0] == kNil) AdvanceToNext();
    return cur_;
  }

  /// Rank of the earliest (when, seq) event without unlinking it. Mirrors
  /// Pop's selection exactly (backlog first, then the wheel head). Advances
  /// the wheel cursor like MinTime(), hence non-const. Only valid on
  /// !empty().
  Head Peek() {
    assert(count_ > 0);
    if (bi_ < backlog_.size()) {
      const Node& nd = NodeAt(backlog_[bi_].node);
      return {nd.when, nd.seq};
    }
    (void)MinTime();
    const unsigned b0 = unsigned(cur_) & kSlotMask;
    const Node& nd = NodeAt(head_[0][b0]);
    return {nd.when, nd.seq};
  }

  /// Reserve the next insertion seq without pushing an event. Used by the
  /// parallel engine to tag a cross-LP send with the rank its completion
  /// event would have received from a local ScheduleAt at the same point in
  /// execution — the key to byte-identical event order across thread counts.
  /// Local pushes stay monotone past the reserved hole, so wheel FIFO order
  /// still equals seq order.
  std::uint64_t TakeSeq() { return next_seq_++; }

  /// Unlink the earliest (when, seq) event. Only valid on !empty().
  Popped Pop() {
    assert(count_ > 0);
    Popped out;
    if (bi_ < backlog_.size()) {
      out = {backlog_[bi_].when, backlog_[bi_].node};
      if (++bi_ == backlog_.size()) {
        backlog_.clear();
        bi_ = 0;
      }
    } else {
      (void)MinTime();
      const unsigned b0 = unsigned(cur_) & kSlotMask;
      const std::uint32_t h = head_[0][b0];
      assert(h != kNil);
      Node& nd = NodeAt(h);
      head_[0][b0] = nd.next;
      if (nd.next == kNil) {
        tail_[0][b0] = kNil;
        bitmap_[0][b0 >> 6] &= ~(1ull << (b0 & 63));
      }
      out = {nd.when, h};
    }
    --count_;
    return out;
  }

  InlineCallback& Callback(std::uint32_t node) { return NodeAt(node).cb; }

  /// Destroy the callback and recycle the node of a popped event.
  void Release(std::uint32_t node) {
    NodeAt(node).cb = nullptr;
    free_.push_back(node);
  }

 private:
  static constexpr unsigned kLevels = 5;    // 256^5 ticks = 2^40 ns horizon
  static constexpr unsigned kSlots = 256;   // slots per level (one byte)
  static constexpr unsigned kSlotMask = kSlots - 1;
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::size_t kChunk = 1024;  // nodes per pool chunk

  struct Node {
    SimTime when = 0;
    std::uint64_t seq = 0;  // insertion seq, for Peek()-based cross-LP merge
    std::uint32_t next = kNil;
    InlineCallback cb;
  };

  struct HeapRef {  // far-future overflow entry
    SimTime when;
    std::uint64_t seq;
    std::uint32_t node;
  };

  struct BacklogEntry {
    SimTime when;
    std::uint32_t node;
  };

  Node& NodeAt(std::uint32_t n) { return chunks_[n / kChunk][n % kChunk]; }

  std::uint32_t AllocNode() {
    if (free_.empty()) {
      const std::uint32_t base = std::uint32_t(chunks_.size() * kChunk);
      chunks_.push_back(std::make_unique<Node[]>(kChunk));
      free_.reserve(free_.size() + kChunk);
      for (std::uint32_t i = kChunk; i-- > 0;) free_.push_back(base + i);
    }
    const std::uint32_t n = free_.back();
    free_.pop_back();
    return n;
  }

  /// File node `n` into the wheel level/slot given by the highest byte in
  /// which `when` differs from the cursor; beyond the wheel horizon it goes
  /// to the overflow heap. Requires when >= cur_.
  void Place(std::uint32_t n, SimTime when, std::uint64_t seq) {
    const std::uint64_t diff = when ^ cur_;
    unsigned level = 0;
    if (diff != 0) level = unsigned(63 - __builtin_clzll(diff)) >> 3;
    if (level >= kLevels) {
      HeapPush(HeapRef{when, seq, n});
      return;
    }
    const unsigned slot = unsigned(when >> (8 * level)) & kSlotMask;
    Node& nd = NodeAt(n);
    nd.next = kNil;
    if (head_[level][slot] == kNil) {
      head_[level][slot] = tail_[level][slot] = n;
      bitmap_[level][slot >> 6] |= 1ull << (slot & 63);
    } else {
      NodeAt(tail_[level][slot]).next = n;
      tail_[level][slot] = n;
    }
  }

  /// Next set bit in a 256-bit map at index >= from, or -1.
  static int NextBit(const std::uint64_t* w, unsigned from) {
    if (from >= kSlots) return -1;
    unsigned word = from >> 6;
    std::uint64_t bits = w[word] & (~0ull << (from & 63));
    for (;;) {
      if (bits) return int(word * 64 + unsigned(__builtin_ctzll(bits)));
      if (++word == kSlots / 64) return -1;
      bits = w[word];
    }
  }

  /// Move the cursor to the next pending instant, cascading one
  /// higher-level slot down per iteration. Caller guarantees the wheel or
  /// the overflow heap holds at least one event.
  void AdvanceToNext() {
    for (;;) {
      const unsigned b0 = unsigned(cur_) & kSlotMask;
      if (head_[0][b0] != kNil) return;
      const int nb = NextBit(bitmap_[0], b0 + 1);
      if (nb >= 0) {
        cur_ = (cur_ & ~SimTime(kSlotMask)) | unsigned(nb);
        return;
      }
      unsigned level = 1;
      for (; level < kLevels; ++level) {
        const unsigned digit = unsigned(cur_ >> (8 * level)) & kSlotMask;
        const int s = NextBit(bitmap_[level], digit + 1);
        if (s >= 0) {
          // Enter that block: digit `level` becomes s, lower digits zero.
          const unsigned shift = 8 * (level + 1);
          cur_ = (cur_ >> shift << shift) | (SimTime(unsigned(s)) << (8 * level));
          CascadeSlot(level, unsigned(s));
          break;
        }
      }
      if (level == kLevels) RefillFromHeap();
    }
  }

  /// Re-file every event of a higher-level slot relative to the new cursor.
  /// FIFO walk preserves insertion order for same-tick events.
  void CascadeSlot(unsigned level, unsigned slot) {
    std::uint32_t n = head_[level][slot];
    head_[level][slot] = tail_[level][slot] = kNil;
    bitmap_[level][slot >> 6] &= ~(1ull << (slot & 63));
    while (n != kNil) {
      Node& nd = NodeAt(n);
      const std::uint32_t next = nd.next;
      Place(n, nd.when, /*seq=*/0);  // within-horizon: seq unused
      n = next;
    }
  }

  /// Wheels are empty: jump the cursor to the earliest overflow event and
  /// migrate everything within the new 2^40-tick horizon. Heap pops are in
  /// (when, seq) order, so bucket FIFO order stays insertion order.
  void RefillFromHeap() {
    assert(!heap_.empty());
    cur_ = heap_.front().when;
    while (!heap_.empty() && ((heap_.front().when ^ cur_) >> 40) == 0) {
      const HeapRef r = HeapPop();
      Place(r.node, r.when, r.seq);
    }
  }

  // --- far-future overflow: 4-ary min-heap on (when, seq) ---

  static bool HeapEarlier(const HeapRef& a, const HeapRef& b) {
    using U128 = unsigned __int128;
    return ((U128(a.when) << 64) | a.seq) < ((U128(b.when) << 64) | b.seq);
  }

  void HeapPush(HeapRef r) {
    heap_.push_back(r);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!HeapEarlier(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  HeapRef HeapPop() {
    const HeapRef top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    while (true) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      const std::size_t last = first + 4 < n ? first + 4 : n;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c)
        if (HeapEarlier(heap_[c], heap_[best])) best = c;
      if (!HeapEarlier(heap_[best], heap_[i])) break;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
    return top;
  }

  SimTime cur_ = 0;            // wheel cursor: last delivered instant
  std::size_t count_ = 0;      // total pending (wheel + heap + backlog)
  std::uint64_t next_seq_ = 0;

  std::uint32_t head_[kLevels][kSlots];
  std::uint32_t tail_[kLevels][kSlots];
  std::uint64_t bitmap_[kLevels][kSlots / 64] = {};

  std::vector<std::unique_ptr<Node[]>> chunks_;  // stable node storage
  std::vector<std::uint32_t> free_;              // recycled node indices
  std::vector<HeapRef> heap_;                    // beyond-horizon overflow
  std::vector<BacklogEntry> backlog_;            // events behind the cursor
  std::size_t bi_ = 0;                           // backlog read cursor
};

}  // namespace canvas::sim
