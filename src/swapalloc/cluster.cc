#include "swapalloc/cluster.h"

#include <algorithm>
#include <cassert>

namespace canvas::swapalloc {

ClusterAllocator::ClusterAllocator(sim::Simulator& sim, std::uint64_t capacity,
                                   Config cfg)
    : sim_(sim), capacity_(capacity), cfg_(cfg), rng_(cfg.rng_seed),
      global_mutex_(sim, cfg.contention_alpha) {
  auto num_clusters =
      std::uint32_t((capacity + cfg.cluster_size - 1) / cfg.cluster_size);
  clusters_.resize(num_clusters);
  for (std::uint32_t c = 0; c < num_clusters; ++c) {
    Cluster& cl = clusters_[c];
    std::uint64_t lo = std::uint64_t(c) * cfg.cluster_size;
    std::uint64_t hi = std::min<std::uint64_t>(lo + cfg.cluster_size, capacity);
    cl.free.reserve(hi - lo);
    for (std::uint64_t e = hi; e-- > lo;) cl.free.push_back(e);
    cl.mutex = std::make_unique<sim::SimMutex>(sim, cfg.contention_alpha);
    cl.in_free_list = true;
    free_clusters_.push_back(c);
  }
  core_cluster_.assign(256, kNoCluster);
  core_cache_.resize(256);
}

std::uint64_t ClusterAllocator::CollidingClusters() const {
  std::uint64_t n = 0;
  for (const Cluster& c : clusters_)
    if (c.owners > 1) ++n;
  return n;
}

void ClusterAllocator::DetachCore(CoreId core) {
  std::uint32_t ci = core_cluster_[core];
  if (ci == kNoCluster) return;
  assert(clusters_[ci].owners > 0);
  --clusters_[ci].owners;
  core_cluster_[core] = kNoCluster;
}

void ClusterAllocator::Allocate(CoreId core, Done done) {
  if (core >= core_cluster_.size()) {
    core_cluster_.resize(core + 1, kNoCluster);
    core_cache_.resize(core + 1);
  }
  // Batched entries from a previous lock acquisition are handed out without
  // touching any lock.
  if (!core_cache_[core].empty()) {
    SwapEntryId e = core_cache_[core].back();
    core_cache_[core].pop_back();
    sim_.Schedule(cfg_.cache_pop_cost, [this, e, done = std::move(done)] {
      AllocResult r;
      r.entry = e;
      r.hold = cfg_.cache_pop_cost;
      RecordAlloc(sim_.Now(), r);
      done(r);
    });
    return;
  }
  // si->lock: brief global critical section on every allocation path
  // (availability counters), before the per-cluster work.
  global_mutex_.Execute(cfg_.si_lock_hold, [this, core,
                                            done = std::move(done)](
                                               SimDuration wait,
                                               SimDuration hold) mutable {
    std::uint32_t ci = core_cluster_[core];
    if (ci != kNoCluster && !clusters_[ci].free.empty()) {
      AllocateFromCluster(core, ci, std::move(done), wait, hold);
      return;
    }
    SwitchCluster(core, [wait, hold, done = std::move(done)](
                            AllocResult r) mutable {
      r.wait += wait;
      r.hold += hold;
      done(r);
    });
  });
}

void ClusterAllocator::AllocateFromCluster(CoreId core, std::uint32_t ci,
                                           Done done, SimDuration prior_wait,
                                           SimDuration prior_hold) {
  Cluster& cl = clusters_[ci];
  // A cluster shared by several cores costs more per allocation: its free
  // slots are interleaved with other cores' allocations, and the scan
  // lengthens further as the partition fills (fewer free slots to find).
  SimDuration hold = cfg_.cluster_hold;
  if (cl.owners > 1) {
    double util = Utilization();
    double factor =
        1.0 + cfg_.util_scan_coeff * (1.0 / std::max(0.02, 1.0 - util) - 1.0);
    hold = std::min(SimDuration(double(cfg_.shared_scan_hold) * factor),
                    cfg_.max_hold);
  }
  if (cfg_.batch_size > 1)
    hold = SimDuration(double(hold) *
                       (1.0 + cfg_.batch_scan_coeff * (cfg_.batch_size - 1)));
  cl.mutex->Execute(hold, [this, core, ci, prior_wait, prior_hold,
                           done = std::move(done)](SimDuration wait,
                                                   SimDuration hold_actual) {
    Cluster& cl2 = clusters_[ci];
    AllocResult r;
    r.wait = prior_wait + wait;
    r.hold = prior_hold + hold_actual;
    if (!cl2.free.empty()) {
      r.entry = cl2.free.back();
      cl2.free.pop_back();
      ++used_;
      // Batch patch: scan additional free entries while holding the lock and
      // stash them in the per-core cache for lock-free handout later.
      auto& cache = core_cache_[core];
      while (cfg_.batch_size > 1 && cache.size() + 1 < cfg_.batch_size &&
             !cl2.free.empty()) {
        cache.push_back(cl2.free.back());
        cl2.free.pop_back();
        ++used_;
      }
      RecordAlloc(sim_.Now(), r);
      done(r);
      return;
    }
    // Raced with another core that drained the cluster: switch and retry.
    DetachCore(core);
    // Carry the accumulated cost through the retry.
    SwitchCluster(core, [r, done = std::move(done)](AllocResult r2) mutable {
      r2.wait += r.wait;
      r2.hold += r.hold;
      done(r2);
    });
  });
}

std::uint32_t ClusterAllocator::PickSharedCluster() {
  // Random probing, as in the patch: pick a random cluster with free space.
  for (int probe = 0; probe < 16; ++probe) {
    auto ci = std::uint32_t(rng_.NextBounded(clusters_.size()));
    if (!clusters_[ci].free.empty()) return ci;
  }
  // Linear fallback scan.
  for (std::uint32_t ci = 0; ci < clusters_.size(); ++ci)
    if (!clusters_[ci].free.empty()) return ci;
  return kNoCluster;
}

void ClusterAllocator::SwitchCluster(CoreId core, Done done) {
  global_mutex_.Execute(cfg_.global_hold, [this, core, done = std::move(done)](
                                              SimDuration wait,
                                              SimDuration hold) mutable {
    // A concurrent allocation from this core may have attached a cluster
    // while we queued on the global lock: use it instead of switching.
    std::uint32_t cur = core_cluster_[core];
    if (cur != kNoCluster && !clusters_[cur].free.empty()) {
      AllocateFromCluster(core, cur, std::move(done), wait, hold);
      return;
    }
    DetachCore(core);
    std::uint32_t ci;
    if (!free_clusters_.empty()) {
      ci = free_clusters_.back();
      free_clusters_.pop_back();
      clusters_[ci].in_free_list = false;
    } else {
      ci = PickSharedCluster();
      ++fallbacks_;
    }
    if (ci == kNoCluster) {
      AllocResult r;  // partition full
      r.wait = wait;
      r.hold = hold;
      done(r);
      return;
    }
    core_cluster_[core] = ci;
    ++clusters_[ci].owners;
    AllocateFromCluster(core, ci, std::move(done), wait, hold);
  });
}

void ClusterAllocator::Free(SwapEntryId entry) {
  assert(used_ > 0);
  --used_;
  auto ci = std::uint32_t(entry / cfg_.cluster_size);
  Cluster& cl = clusters_[ci];
  cl.free.push_back(entry);
  // A fully-free, unowned cluster returns to the free-cluster list.
  std::uint64_t lo = std::uint64_t(ci) * cfg_.cluster_size;
  std::uint64_t hi = std::min<std::uint64_t>(lo + cfg_.cluster_size, capacity_);
  if (cl.owners == 0 && !cl.in_free_list && cl.free.size() == hi - lo) {
    cl.in_free_list = true;
    free_clusters_.push_back(ci);
  }
}

}  // namespace canvas::swapalloc
