// Declarative sweep description (DESIGN.md §10).
//
// A ScenarioSpec names WHAT to run — system presets (plus feature
// overrides), a co-run application template, and sweep axes (local-memory
// ratio, workload scale, seed) — and Expand() turns it into the flat,
// index-ordered list of RunSpecs the SweepEngine executes. The expansion
// order is part of the contract: results are aggregated by spec index, so
// the same ScenarioSpec always produces the same run list and therefore
// the same aggregated report, regardless of how many worker threads
// execute it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "serving/harness.h"

namespace canvas::orchestrator {

/// Feature toggles applied on top of a resolved preset (the canvasctl
/// `--no-adaptive` / `--prefetcher=` surface, made composable).
struct FeatureOverrides {
  std::optional<bool> adaptive_alloc;
  std::optional<bool> horizontal_sched;
  std::optional<core::PrefetcherKind> prefetcher;
  std::optional<core::SchedulerKind> scheduler;
  std::optional<bool> isolated_partitions;
  std::optional<bool> isolated_caches;

  void Apply(core::SystemConfig& cfg) const;
  bool Any() const;
};

/// Parse a prefetcher name ("none" | "readahead" | "leap" | "two-tier").
std::optional<core::PrefetcherKind> PrefetcherFromName(
    const std::string& name);

/// One fully resolved run: position in the expanded grid, a human-readable
/// label, and the complete experiment description.
struct RunSpec {
  std::size_t index = 0;
  std::string label;
  core::ExperimentSpec exp;
};

/// Sweep axes shared by every scenario surface (batch, serving, churn).
/// Each derived spec adds its own workload template and extra axes but the
/// system/topology/tier/seed block — and the canvasctl flags that fill it —
/// is declared exactly once, here.
struct AxisSpec {
  /// Preset names resolved via SystemConfig::FromName.
  std::vector<std::string> systems = {"canvas"};
  FeatureOverrides overrides;
  /// Server-topology axis (DESIGN.md §11), resolved via
  /// remote::PoolConfig::FromName. The default {"single"} keeps the
  /// single-infinite-server fast path and leaves run labels unchanged.
  /// (ServingScenarioSpec re-defaults this to {"pool4"} in its ctor.)
  std::vector<std::string> topologies = {"single"};
  /// Hybrid-local-tier axis (DESIGN.md §14), resolved via
  /// tier::TierConfig::FromName and composing with the topology axis. The
  /// default {"none"} disables the tier and leaves run labels unchanged.
  std::vector<std::string> tiers = {"none"};
  /// Swap-granularity axis (DESIGN.md §16): "page" = classic demand paging,
  /// "object" = SystemConfig::objects.enabled (behaviour-scheduled
  /// object fetching for workloads that ship a registry, e.g. "chase").
  /// The default {"page"} leaves config and run labels unchanged.
  std::vector<std::string> granularities = {"page"};
  std::vector<std::uint64_t> seeds = {7};
  SimTime deadline = 600 * kSecond;
  /// Worker threads per single run (SystemConfig::sim_threads, DESIGN.md
  /// §12). 1 = serial engine. Stamped onto every expanded run; results are
  /// byte-identical either way, so this is not a sweep axis — it never
  /// appears in run labels.
  unsigned sim_threads = 1;
};

/// The declarative experiment surface. Axes combine as a full grid in
/// fixed nesting order: system (outer) -> topology -> tier -> granularity
/// -> ratio -> scale -> seed (inner).
struct ScenarioSpec : AxisSpec {
  /// Co-run template. Each AppBuild's ratio/scale/seed fields are
  /// overwritten by the axis values at expansion; name/cores/threads are
  /// taken as-is.
  std::vector<core::AppBuild> apps;
  std::vector<double> ratios = {0.25};
  std::vector<double> scales = {0.3};

  std::size_t RunCount() const {
    return systems.size() * topologies.size() * tiers.size() *
           granularities.size() * ratios.size() * scales.size() *
           seeds.size();
  }

  /// Expand the grid into RunSpecs, index-ordered. Throws
  /// std::invalid_argument on an unknown preset name.
  std::vector<RunSpec> Expand() const;
};

/// Label for one grid point, e.g. "canvas/r0.25/s0.30/seed7". A
/// non-default topology is appended as a trailing "/pool4" segment, a
/// non-default tier as "/cxl" after it, and the non-default "object"
/// granularity last; the defaults ("single", "none", "page") leave the
/// label exactly as before, so existing sweep reports keep their keys.
/// Used both for progress output and as the stable per-run key in sweep
/// reports.
std::string RunLabel(const std::string& system, const std::string& topology,
                     double ratio, double scale, std::uint64_t seed,
                     const std::string& tier = "none",
                     const std::string& granularity = "page");

/// Declarative serving-sweep surface (DESIGN.md §13): like ScenarioSpec but
/// over serving::ServingSpecs, with an arrival-process axis instead of the
/// ratio/scale axes. Nesting order: system (outer) -> topology -> tier ->
/// arrival -> seed (inner).
struct ServingScenarioSpec : AxisSpec {
  ServingScenarioSpec() { topologies = {"pool4"}; }

  /// Arrival-kind axis ("poisson" | "diurnal" | "flash"), applied to the
  /// tenants marked `load_tenant` — or to every tenant when none is
  /// marked. Non-load tenants keep their template arrival process, so a
  /// quiet protected tenant stays quiet across the axis.
  std::vector<std::string> arrivals = {"poisson"};
  /// Tenant template (serving::TenantSpec carries its own SLO + cgroup
  /// sizing; nothing is overwritten except the arrival kind above).
  std::vector<serving::TenantSpec> tenants;
  serving::QosConfig qos;
  bool qos_enabled = true;

  std::size_t RunCount() const {
    return systems.size() * topologies.size() * tiers.size() *
           granularities.size() * arrivals.size() * seeds.size();
  }

  /// Expand into index-ordered ServingSpecs. Throws std::invalid_argument
  /// on unknown system/topology/arrival names.
  std::vector<serving::ServingSpec> Expand() const;
};

/// Label for one serving grid point, e.g. "canvas/pool4/poisson/seed7"
/// (the default "single" topology and "none" tier segments are omitted,
/// like RunLabel, so pre-tier serving reports keep their keys).
std::string ServingRunLabel(const std::string& system,
                            const std::string& topology,
                            const std::string& arrival, std::uint64_t seed,
                            const std::string& tier = "none",
                            const std::string& granularity = "page");

/// Resolve a granularity-axis name to the SystemConfig::objects.enabled
/// setting: "page" -> false, "object" -> true; nullopt otherwise.
std::optional<bool> GranularityFromName(const std::string& name);

}  // namespace canvas::orchestrator
