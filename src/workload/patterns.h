// Access-pattern primitives composed by the application models (apps.h).
//
// Each primitive is a deterministic ThreadStream over a page Region. The
// pointer-chasing primitives operate on a HeapGraph, which doubles as the
// ground truth fed to the managed runtime's summary graph — the same edges
// the workload will traverse are the edges a write barrier would have
// recorded, so application-tier reference prefetching can be evaluated
// honestly.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "runtime/runtime_info.h"
#include "workload/workload.h"

namespace canvas::workload {

struct Region {
  PageId start = 0;
  PageId len = 0;
  PageId end() const { return start + len; }
};

/// Repeated passes over a region with a fixed stride (array scans). Per-page
/// sampling keeps the simulation page-granular: one access per page touched.
class SequentialScanStream : public ThreadStream {
 public:
  struct Params {
    Region region;
    std::int64_t stride = 1;
    std::uint32_t passes = 1;
    std::uint32_t compute_ns = 150;
    double write_fraction = 0.0;
    std::uint64_t seed = 1;
  };
  explicit SequentialScanStream(Params p);
  std::optional<Access> Next() override;

 private:
  Params p_;
  Rng rng_;
  std::uint32_t pass_ = 0;
  PageId offset_ = 0;  // within region, in stride units
};

/// Zipfian random access over a region (key-value workloads).
class ZipfStream : public ThreadStream {
 public:
  struct Params {
    Region region;
    std::uint64_t accesses = 0;
    double theta = 0.99;
    std::uint32_t compute_ns = 150;
    double write_fraction = 0.1;
    std::uint64_t seed = 1;
  };
  explicit ZipfStream(Params p);
  std::optional<Access> Next() override;

 private:
  Params p_;
  Rng rng_;
  ZipfianGenerator zipf_;
  std::uint64_t done_ = 0;
  std::vector<PageId> perm_;  // decorrelate rank from page position
};

/// Uniform random access over a region.
class UniformStream : public ThreadStream {
 public:
  struct Params {
    Region region;
    std::uint64_t accesses = 0;
    std::uint32_t compute_ns = 150;
    double write_fraction = 0.1;
    std::uint64_t seed = 1;
  };
  explicit UniformStream(Params p);
  std::optional<Access> Next() override;

 private:
  Params p_;
  Rng rng_;
  std::uint64_t done_ = 0;
};

/// Pointer-linked heap over a page region. Each page holds objects with
/// out-references to a few other pages; the same edges are recorded into
/// the RuntimeInfo summary graph (write-barrier ground truth).
class HeapGraph {
 public:
  HeapGraph(Region region, std::uint32_t out_degree, std::uint64_t seed,
            runtime::RuntimeInfo* info);

  const Region& region() const { return region_; }
  /// Random out-neighbour of `page`.
  PageId Step(PageId page, Rng& rng) const;
  /// All out-neighbours of `page` (degree() entries).
  const PageId* Neighbors(PageId page) const;
  std::uint32_t degree() const { return degree_; }

 private:
  Region region_;
  std::uint32_t degree_;
  std::vector<PageId> edges_;  // degree_ edges per page, flattened
};

/// Pointer-order traversal over a HeapGraph (graph analytics / object
/// traversal). By default a bounded DFS following every out-reference in
/// order — the access order of PageRank-style edge iteration, which a
/// semantic (reference-based) prefetcher can anticipate but a low-level
/// (sequential/strided) detector cannot. With `random_walk` set, each step
/// picks one random out-edge instead (the paper's §5.1 "worst case":
/// unpredictable for every prefetcher). Restarts at a random page with
/// `restart_prob` (new traversal root).
class PointerChaseStream : public ThreadStream {
 public:
  struct Params {
    const HeapGraph* graph = nullptr;
    std::uint64_t accesses = 0;
    double restart_prob = 0.02;
    bool random_walk = false;
    std::uint32_t compute_ns = 250;
    double write_fraction = 0.05;
    std::uint64_t seed = 1;
  };
  explicit PointerChaseStream(Params p);
  std::optional<Access> Next() override;

 private:
  Params p_;
  Rng rng_;
  PageId current_;
  std::vector<PageId> stack_;  // DFS worklist
  std::uint64_t done_ = 0;
};

/// GC model: alternating cycles of full-heap traversal (pointer order —
/// unprefetchable by low-level detectors) and idle periods touching only a
/// small metadata region.
class GcStream : public ThreadStream {
 public:
  struct Params {
    const HeapGraph* graph = nullptr;
    Region metadata;             // small always-hot region
    std::uint32_t cycles = 4;
    std::uint64_t trace_accesses_per_cycle = 4000;
    std::uint64_t idle_accesses_per_cycle = 4000;
    std::uint32_t trace_compute_ns = 200;
    std::uint32_t idle_compute_ns = 800;
    std::uint64_t seed = 1;
  };
  explicit GcStream(Params p);
  std::optional<Access> Next() override;

 private:
  Params p_;
  Rng rng_;
  PageId current_;
  std::uint32_t cycle_ = 0;
  std::uint64_t in_cycle_ = 0;
};

/// Concatenation of phases (epochal behaviour: one region per epoch).
class PhasedStream : public ThreadStream {
 public:
  explicit PhasedStream(std::vector<std::unique_ptr<ThreadStream>> phases)
      : phases_(std::move(phases)) {}
  std::optional<Access> Next() override;

 private:
  std::vector<std::unique_ptr<ThreadStream>> phases_;
  std::size_t idx_ = 0;
};

/// Mixes two streams with a given probability of drawing from the first.
class MixStream : public ThreadStream {
 public:
  MixStream(std::unique_ptr<ThreadStream> a, std::unique_ptr<ThreadStream> b,
            double p_first, std::uint64_t seed)
      : a_(std::move(a)), b_(std::move(b)), p_(p_first), rng_(seed) {}
  std::optional<Access> Next() override;

 private:
  std::unique_ptr<ThreadStream> a_;
  std::unique_ptr<ThreadStream> b_;
  double p_;
  Rng rng_;
};

}  // namespace canvas::workload
