# Empty compiler generated dependencies file for canvas_workload.
# This may be replaced when dependencies are built.
