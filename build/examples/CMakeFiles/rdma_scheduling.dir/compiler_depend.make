# Empty compiler generated dependencies file for rdma_scheduling.
# This may be replaced when dependencies are built.
