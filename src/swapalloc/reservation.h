// Canvas adaptive swap-entry reservation (§5.1).
//
// Pages keep a one-to-one reserved swap entry recorded in their metadata:
// the (lock-protected) allocator runs only on the *first* swap-out; every
// later swap-out of the page reuses its reserved entry lock-free. When
// remote-memory usage crosses the pressure threshold (75% in the paper), a
// periodic scan of the LRU active-list head identifies hot pages — pages
// seen near the head in consecutive scans — and cancels their reservations,
// returning entries to the free list (time/space trade-off). The page state
// machine of the paper's Figure 7 is realized by the page.reserved field:
//   state 2 (no entry remembered)  -> swap-out takes the allocator path,
//                                     then remembers the new entry (state 5)
//   state 5 (entry remembered)     -> swap-out is lock-free
//   state 3 (became hot)           -> scan cancels the reservation
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "cgroup/cgroup.h"
#include "common/types.h"
#include "mem/lru.h"
#include "mem/page.h"
#include "sim/simulator.h"
#include "swapalloc/partition.h"

namespace canvas::swapalloc {

class ReservationManager {
 public:
  struct Config {
    /// Remote-usage fraction at which reservation removal starts.
    double pressure_threshold = 0.75;
    /// Period of the hot-page detection scan. Short relative to the paper's
    /// (minutes-long runs used coarser periods); our scaled runs last a few
    /// hundred milliseconds.
    SimDuration scan_period = 2 * kMillisecond;
    /// Pages examined from the active-list head per scan.
    std::size_t scan_pages = 2048;
    /// Consecutive scans a page must appear in to be declared hot.
    std::uint8_t hot_scans = 2;
    /// Upper bound on reservations cancelled per scan.
    std::size_t max_removals_per_scan = 2048;
    /// Fraction of partition capacity kept free by proactive cancellation
    /// so first-time swap-outs rarely hit a full partition.
    double free_slack = 0.05;
  };

  ReservationManager(sim::Simulator& sim, std::vector<mem::Page>& pages,
                     mem::LruLists& lru, SwapPartition& partition,
                     Cgroup& cgroup, Config cfg);

  /// Begin periodic scanning.
  void Start();

  /// Tenant retirement (DESIGN.md §15): the manager may be destroyed while
  /// a scan tick is still pending on the DES clock. The tick holds the
  /// alive token and becomes a no-op once the manager is gone, so
  /// destruction at reap time is safe without draining the event queue.
  ~ReservationManager() {
    if (alive_) *alive_ = false;
  }

  /// Swap-out fast path: returns the reserved entry (lock-free) or
  /// kInvalidEntry if the page must take the allocation path.
  SwapEntryId TakeReserved(mem::Page& page);

  /// Called after the slow path allocated `entry` for `page`: remember it
  /// (transition to state 5 in Fig. 7). Each slow-path allocation consumes
  /// one free entry, creating one unit of cancellation debt that a future
  /// cancel repays.
  void Remember(mem::Page& page, SwapEntryId entry);

  /// Cancel-on-arrival (swap-in boundary): if the free pool is below the
  /// slack target AND outstanding cancellation debt exists, the arriving
  /// page gives up its reservation — it is the resident whose next
  /// swap-out lies furthest in the future. Debt-matching keeps cancels ==
  /// allocations, so reservations recycle round-robin instead of being
  /// stripped from every arriving page. Returns true if cancelled.
  bool MaybeCancelOnArrival(mem::Page& page);

  /// Cancel up to `n` reservations of *resident* pages immediately (used
  /// when the allocator reports a full partition). Returns entries freed.
  std::size_t EmergencyReclaim(std::size_t n);

  /// Hook invoked when a cancel frees the entry that also held the page's
  /// clean remote copy (`page.entry`), just before the entry is dropped.
  /// The SwapSystem uses it to release hybrid-tier residency (DESIGN.md
  /// §14) — the tier's resident index must not outlive the entry.
  void SetEntryLostHook(std::function<void(mem::Page&)> fn) {
    entry_lost_ = std::move(fn);
  }

  // --- statistics ---
  std::uint64_t lock_free_swapouts() const { return lock_free_; }
  std::uint64_t removals() const { return removals_; }
  std::uint64_t scans() const { return scans_; }

 private:
  void Tick();
  /// Cancel one page's reservation; returns true if an entry was freed.
  bool Cancel(mem::Page& page);

  sim::Simulator& sim_;
  std::vector<mem::Page>& pages_;
  mem::LruLists& lru_;
  SwapPartition& partition_;
  Cgroup& cgroup_;
  Config cfg_;
  std::function<void(mem::Page&)> entry_lost_;
  std::uint32_t generation_ = 0;
  std::int64_t cancel_debt_ = 0;
  PageId emergency_cursor_ = 0;
  std::vector<PageId> scan_buf_;
  std::uint64_t lock_free_ = 0;
  std::uint64_t removals_ = 0;
  std::uint64_t scans_ = 0;
  bool started_ = false;
  /// Liveness token captured by pending scan ticks (see ~ReservationManager).
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace canvas::swapalloc
