// Table 3: performance variation of the three native applications when
// co-running with each of the ELEVEN managed applications at 25% local
// memory, comparing Canvas / Linux 5.5 / Fastswap. Paper result: Canvas
// cuts the slowdown stddev ~7x (overall sigma 1.72 -> 0.23) and the mean
// from 3.2x to 1.2x.
#include <map>

#include "bench_util.h"
#include "common/stats.h"

using namespace canvas;
using namespace canvas::bench;

int main() {
  double scale = ScaleFromEnv(0.12);
  const std::vector<std::string> natives{"snappy", "memcached", "xgboost"};

  struct Sys {
    std::string label;
    core::SystemConfig cfg;
  };
  std::vector<Sys> systems = {{"canvas", core::SystemConfig::CanvasFull()},
                              {"linux", core::SystemConfig::Linux55()},
                              {"fastswap", core::SystemConfig::Fastswap()}};

  // Solo baselines (Linux 5.5, as in the paper).
  std::map<std::string, SimTime> solo;
  for (const auto& n : natives)
    solo[n] = Solo(n, scale, 0.25, core::SystemConfig::Linux55());

  // slowdown samples per (system, native app).
  std::map<std::string, std::map<std::string, StreamingStats>> stats;
  for (const auto& managed : workload::ManagedAppNames()) {
    for (auto& sys : systems) {
      core::Experiment e(sys.cfg, ManagedPlusNatives(managed, scale, 0.25));
      e.Run();
      for (std::size_t i = 1; i < 4; ++i) {
        const std::string& n = natives[i - 1];
        double sd = core::Slowdown(e.FinishTime(i), solo[n]);
        if (sd > 0) stats[sys.label][n].Add(sd);
      }
    }
  }

  PrintBanner("Table 3: native-app slowdown statistics across 11 managed "
              "co-runners (25% local memory)");
  TablePrinter table({"program", "system", "mean", "min", "max", "stddev"});
  for (const auto& n : natives) {
    for (auto& sys : systems) {
      const StreamingStats& s = stats[sys.label][n];
      table.AddRow({n, sys.label, X(s.mean()), X(s.min()), X(s.max()),
                    TablePrinter::Num(s.stddev(), 2)});
    }
  }
  // Overall rows.
  for (auto& sys : systems) {
    StreamingStats all;
    for (const auto& n : natives) all.Merge(stats[sys.label][n]);
    table.AddRow({"OVERALL", sys.label, X(all.mean()), X(all.min()),
                  X(all.max()), TablePrinter::Num(all.stddev(), 2)});
  }
  table.Print();
  std::puts("\nPaper: overall sigma Canvas 0.23 vs Linux 1.72 vs Fastswap "
            "~1.1-2.1; Canvas mean 1.21 vs Linux 3.24.");
  return 0;
}
