file(REMOVE_RECURSE
  "CMakeFiles/table04_swapout_thruput.dir/table04_swapout_thruput.cpp.o"
  "CMakeFiles/table04_swapout_thruput.dir/table04_swapout_thruput.cpp.o.d"
  "table04_swapout_thruput"
  "table04_swapout_thruput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_swapout_thruput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
