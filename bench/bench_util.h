// Shared helpers for the reproduction benches (one binary per paper
// table/figure). Every bench prints paper-style rows via TablePrinter and
// honours CANVAS_SCALE (workload scale factor), CANVAS_SEED and
// CANVAS_JOBS (sweep worker threads) from the environment so the whole
// suite can be dialed up or down.
//
// Apps are composed through core::AppBuild / ExperimentSpec — the same
// declarative surface canvasctl and the orchestrator use — so a bench run
// is a plain value that can be handed to the SweepEngine and executed on
// any number of worker threads without changing its result.
#pragma once

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/table.h"
#include "core/experiment.h"
#include "orchestrator/sweep.h"
#include "workload/apps.h"

namespace canvas::bench {

inline double ScaleFromEnv(double fallback) {
  const char* s = std::getenv("CANVAS_SCALE");
  return s ? std::atof(s) : fallback;
}

inline std::uint64_t SeedFromEnv() {
  const char* s = std::getenv("CANVAS_SEED");
  return s ? std::strtoull(s, nullptr, 10) : 7;
}

/// Sweep worker threads: CANVAS_JOBS, default = hardware concurrency.
inline unsigned JobsFromEnv() {
  const char* s = std::getenv("CANVAS_JOBS");
  if (s) return std::max(1u, unsigned(std::atoi(s)));
  return std::max(1u, std::thread::hardware_concurrency());
}

/// One application of a co-run, paper defaults applied (cores via
/// core::PaperCores, seed via CANVAS_SEED).
inline core::AppBuild Build(const std::string& name, double scale,
                            double ratio, std::uint32_t cores = 0,
                            std::uint64_t seed = 0) {
  core::AppBuild b;
  b.name = name;
  b.scale = scale;
  b.ratio = ratio;
  b.cores = cores;
  b.seed = seed ? seed : SeedFromEnv();
  return b;
}

/// The paper's standard co-run: one managed app plus the three natives.
inline std::vector<core::AppBuild> CorunBuilds(const std::string& managed,
                                               double scale, double ratio) {
  return {Build(managed, scale, ratio), Build("snappy", scale, ratio),
          Build("memcached", scale, ratio), Build("xgboost", scale, ratio)};
}

/// RunSpec at the next index of `specs` (bench drivers build their grid
/// explicitly and read results back by position).
inline std::size_t AddRun(std::vector<orchestrator::RunSpec>& specs,
                          std::string label, core::SystemConfig cfg,
                          std::vector<core::AppBuild> apps) {
  orchestrator::RunSpec r;
  r.index = specs.size();
  r.label = std::move(label);
  r.exp.config = std::move(cfg);
  r.exp.apps = std::move(apps);
  specs.push_back(std::move(r));
  return specs.size() - 1;
}

/// Execute a bench grid on the CANVAS_JOBS-sized pool.
inline orchestrator::SweepResult RunSweep(
    std::vector<orchestrator::RunSpec> specs, unsigned jobs = 0) {
  orchestrator::SweepOptions opts;
  opts.jobs = jobs ? jobs : JobsFromEnv();
  orchestrator::SweepEngine engine(opts);
  return engine.Run(std::move(specs));
}

/// Legacy single-run helpers (non-ported benches): materialize and run in
/// the calling thread.
inline core::AppSpec Spec(const std::string& name, double scale,
                          double ratio, std::uint32_t cores = 0,
                          std::uint64_t seed = 0) {
  auto apps = core::BuildApps({Build(name, scale, ratio, cores, seed)});
  return std::move(apps.front());
}

inline std::vector<core::AppSpec> ManagedPlusNatives(
    const std::string& managed, double scale, double ratio) {
  return core::BuildApps(CorunBuilds(managed, scale, ratio));
}

/// Run one app alone under `cfg`; returns its makespan.
inline SimTime Solo(const std::string& name, double scale, double ratio,
                    const core::SystemConfig& cfg) {
  core::Experiment e(cfg, core::BuildApps({Build(name, scale, ratio)}));
  e.Run();
  return e.FinishTime(0);
}

inline std::string X(double v) { return TablePrinter::Num(v, 2) + "x"; }
inline std::string Pct(double v) { return TablePrinter::Num(v, 1) + "%"; }

}  // namespace canvas::bench
