// Tests for the remote memory-server pool (DESIGN.md §11): placement
// policies, harvesting-driven migration and disk eviction, the single-home
// (no-dual-residency) and capacity-conservation invariants, per-server
// fault targeting, and the transparent-topology equivalence that anchors
// the whole subsystem to the pre-pool fast path.
#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.h"
#include "core/report.h"
#include "fault/fault_plan.h"
#include "remote/placement.h"
#include "remote/pool.h"
#include "sim/simulator.h"

namespace canvas::remote {
namespace {

ServerConfig Finite(const std::string& name, std::uint64_t capacity) {
  ServerConfig s;
  s.name = name;
  s.capacity_slabs = capacity;
  return s;
}

std::vector<ServerState> States(std::vector<std::uint64_t> capacities,
                                std::vector<std::uint64_t> held) {
  std::vector<ServerState> out;
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    out.emplace_back(Finite("ms" + std::to_string(i), capacities[i]),
                     SimDuration(100));
    out.back().slabs_held = held[i];
  }
  return out;
}

// --- placement policies -----------------------------------------------

TEST(Placement, FirstFitPicksLowestServerWithRoom) {
  Rng rng(1);
  auto policy = MakePlacementPolicy(PlacementKind::kFirstFit);
  auto s = States({2, 2, 2}, {2, 1, 0});  // server 0 full
  EXPECT_EQ(policy->Pick(s, kNoServer, rng), 1);
  s[1].slabs_held = 2;
  EXPECT_EQ(policy->Pick(s, kNoServer, rng), 2);
}

TEST(Placement, FirstFitSkipsDownAndExcludedServers) {
  Rng rng(1);
  auto policy = MakePlacementPolicy(PlacementKind::kFirstFit);
  auto s = States({4, 4, 4}, {0, 0, 0});
  s[0].down = true;
  EXPECT_EQ(policy->Pick(s, /*exclude=*/1, rng), 2);
  s[2].down = true;
  EXPECT_EQ(policy->Pick(s, /*exclude=*/1, rng), kNoServer);
}

TEST(Placement, RoundRobinCyclesThroughEligibleServers) {
  Rng rng(1);
  auto policy = MakePlacementPolicy(PlacementKind::kRoundRobin);
  auto s = States({8, 8, 8}, {0, 0, 0});
  std::vector<ServerId> picks;
  for (int i = 0; i < 6; ++i) picks.push_back(policy->Pick(s, kNoServer, rng));
  EXPECT_EQ(picks, (std::vector<ServerId>{0, 1, 2, 0, 1, 2}));
}

TEST(Placement, PowerOfTwoPrefersTheEmptierServer) {
  // Whenever the two draws differ the emptier server wins, so over many
  // picks the nearly-full server loses the large majority (it can only win
  // when both draws land on it). Seeded rng makes the counts deterministic.
  auto policy = MakePlacementPolicy(PlacementKind::kPowerOfTwo);
  Rng rng(42);
  auto s = States({100, 100}, {90, 5});
  int wins[2] = {0, 0};
  for (int i = 0; i < 64; ++i) ++wins[policy->Pick(s, kNoServer, rng)];
  EXPECT_GT(wins[1], wins[0] * 2);
}

TEST(Placement, PowerOfTwoWithOneEligibleServerAlwaysPicksIt) {
  auto policy = MakePlacementPolicy(PlacementKind::kPowerOfTwo);
  Rng rng(42);
  auto s = States({100, 100}, {100, 5});  // server 0 full -> ineligible
  for (int i = 0; i < 8; ++i) EXPECT_EQ(policy->Pick(s, kNoServer, rng), 1);
}

TEST(Placement, PowerOfTwoIsDeterministicForASeed) {
  auto s = States({10, 10, 10, 10}, {1, 2, 3, 4});
  std::vector<ServerId> a, b;
  {
    Rng rng(7);
    auto policy = MakePlacementPolicy(PlacementKind::kPowerOfTwo);
    for (int i = 0; i < 16; ++i) a.push_back(policy->Pick(s, kNoServer, rng));
  }
  {
    Rng rng(7);
    auto policy = MakePlacementPolicy(PlacementKind::kPowerOfTwo);
    for (int i = 0; i < 16; ++i) b.push_back(policy->Pick(s, kNoServer, rng));
  }
  EXPECT_EQ(a, b);
}

TEST(Placement, KindNamesRoundTrip) {
  for (auto k : {PlacementKind::kFirstFit, PlacementKind::kRoundRobin,
                 PlacementKind::kPowerOfTwo}) {
    PlacementKind parsed;
    ASSERT_TRUE(ParsePlacementKind(PlacementKindName(k), &parsed));
    EXPECT_EQ(parsed, k);
  }
  PlacementKind ignored;
  EXPECT_FALSE(ParsePlacementKind("best-fit", &ignored));
}

// --- topology registry ------------------------------------------------

TEST(Topology, RegistryResolvesKnownNamesAndRejectsUnknown) {
  EXPECT_FALSE(PoolConfig::FromName("single").enabled());
  EXPECT_EQ(PoolConfig::FromName("transparent").servers.size(), 1u);
  EXPECT_EQ(PoolConfig::FromName("pool2").servers.size(), 2u);
  EXPECT_EQ(PoolConfig::FromName("pool4").servers.size(), 4u);
  EXPECT_EQ(PoolConfig::FromName("pool8").servers.size(), 8u);
  EXPECT_GT(PoolConfig::FromName("pool4-harvest").harvest.period, 0);
  EXPECT_THROW(PoolConfig::FromName("mesh16"), std::invalid_argument);
  EXPECT_FALSE(PoolConfig::ListTopologies().empty());
}

// --- pool mechanics (unit level) --------------------------------------

PoolConfig TwoServerPool(std::uint64_t cap_each) {
  PoolConfig cfg;
  cfg.topology = "test-pool2";
  cfg.placement = PlacementKind::kFirstFit;
  cfg.slab_entries = 16;
  cfg.servers = {Finite("ms0", cap_each), Finite("ms1", cap_each)};
  return cfg;
}

TEST(Pool, PlacesLazilyAndRoutesToTheHome) {
  sim::Simulator sim;
  ServerPool pool(sim, TwoServerPool(4));
  std::uint32_t pid = pool.RegisterPartition(16 * 8);  // 8 slabs
  EXPECT_EQ(pool.HomeOf(pid, 0), kSlabUnplaced);
  EXPECT_EQ(pool.EnsurePlaced(pid, 5), 0);    // slab 0 -> first fit
  EXPECT_EQ(pool.EnsurePlaced(pid, 5), 0);    // idempotent
  EXPECT_EQ(pool.RouteAtDispatch(pid, 5), 0);
  // Fill server 0 (4 slabs), the next slab spills to server 1.
  for (std::uint64_t slab = 1; slab < 5; ++slab)
    pool.EnsurePlaced(pid, slab * 16);
  EXPECT_EQ(pool.HomeOf(pid, 4 * 16), 1);
  EXPECT_EQ(pool.slabs_placed(), 5u);
  std::string err;
  EXPECT_TRUE(pool.Audit(&err)) << err;
}

TEST(Pool, HarvestMigratesNewestSlabsToAServerWithRoom) {
  sim::Simulator sim;
  ServerPool pool(sim, TwoServerPool(4));
  std::uint32_t pid = pool.RegisterPartition(16 * 8);
  for (std::uint64_t slab = 0; slab < 4; ++slab)
    pool.EnsurePlaced(pid, slab * 16);  // all on server 0
  ASSERT_EQ(pool.servers()[0].slabs_held, 4u);
  pool.ApplyHarvest({sim.Now(), /*server=*/0, /*delta_slabs=*/-2});
  EXPECT_EQ(pool.servers()[0].capacity_slabs, 2u);
  EXPECT_EQ(pool.servers()[0].slabs_held, 2u);
  EXPECT_EQ(pool.servers()[1].slabs_held, 2u);
  EXPECT_EQ(pool.migrations(), 2u);
  EXPECT_EQ(pool.evictions_to_disk(), 0u);
  // Newest-placed slabs moved; the oldest stayed put.
  EXPECT_EQ(pool.HomeOf(pid, 0), 0);
  EXPECT_EQ(pool.HomeOf(pid, 3 * 16), 1);
  std::string err;
  EXPECT_TRUE(pool.Audit(&err)) << err;
}

TEST(Pool, HarvestEvictsToDiskWhenNoServerHasRoom) {
  sim::Simulator s2;
  ServerPool pool(s2, TwoServerPool(2));
  std::uint32_t pid = pool.RegisterPartition(16 * 4);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> evicted;
  pool.SetSlabEvictedHandler(
      [&](std::uint32_t p, std::uint64_t lo, std::uint64_t hi) {
        EXPECT_EQ(p, pid);
        evicted.emplace_back(lo, hi);
      });
  for (std::uint64_t slab = 0; slab < 4; ++slab)
    pool.EnsurePlaced(pid, slab * 16);  // both servers full
  pool.ApplyHarvest({s2.Now(), /*server=*/1, /*delta_slabs=*/-1});
  EXPECT_EQ(pool.evictions_to_disk(), 1u);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].first, 3 * 16u);  // newest slab on server 1
  EXPECT_EQ(evicted[0].second, 4 * 16u);
  EXPECT_TRUE(pool.OnDisk(pid, 3 * 16));
  // Disk-homed requests still in the fabric forward via the last home.
  EXPECT_EQ(pool.RouteAtDispatch(pid, 3 * 16), 1);
  std::string err;
  EXPECT_TRUE(pool.Audit(&err)) << err;
}

TEST(Pool, MarkServerDownEvictsEverythingItHeld) {
  sim::Simulator sim;
  ServerPool pool(sim, TwoServerPool(4));
  std::uint32_t pid = pool.RegisterPartition(16 * 8);
  int evictions = 0;
  pool.SetSlabEvictedHandler(
      [&](std::uint32_t, std::uint64_t, std::uint64_t) { ++evictions; });
  for (std::uint64_t slab = 0; slab < 6; ++slab)
    pool.EnsurePlaced(pid, slab * 16);  // 4 on ms0, 2 on ms1
  pool.MarkServerDown(0);
  EXPECT_EQ(evictions, 4);
  EXPECT_EQ(pool.servers()[0].slabs_held, 0u);
  for (std::uint64_t slab = 0; slab < 4; ++slab)
    EXPECT_TRUE(pool.OnDisk(pid, slab * 16));
  // New placements avoid the dead server.
  EXPECT_EQ(pool.EnsurePlaced(pid, 6 * 16), 1);
  pool.MarkServerUp(0);
  EXPECT_EQ(pool.EnsurePlaced(pid, 7 * 16), 0);
  std::string err;
  EXPECT_TRUE(pool.Audit(&err)) << err;
}

TEST(Pool, RebalanceTenantMovesNewestSlabsToTheEmptiestServer) {
  sim::Simulator sim;
  PoolConfig cfg = TwoServerPool(8);
  cfg.servers.push_back(Finite("ms2", 8));
  ServerPool pool(sim, cfg);
  std::uint32_t hot = pool.RegisterPartition(16 * 8);
  std::uint32_t cold = pool.RegisterPartition(16 * 8);
  // First-fit stacks everything on server 0: 1 cold slab under 4 hot ones.
  pool.EnsurePlaced(cold, 0);
  for (std::uint64_t slab = 0; slab < 4; ++slab)
    pool.EnsurePlaced(hot, slab * 16);
  ASSERT_EQ(pool.servers()[0].slabs_held, 5u);
  // Move up to 2 of the hot tenant's slabs; servers 1 and 2 are both empty,
  // so the lowest id wins the tie each round.
  EXPECT_EQ(pool.RebalanceTenant(hot, 2), 2u);
  EXPECT_EQ(pool.servers()[0].slabs_held, 3u);
  EXPECT_EQ(pool.servers()[1].slabs_held, 1u);
  EXPECT_EQ(pool.servers()[2].slabs_held, 1u);
  // Newest hot slabs moved; the cold tenant and oldest hot slab stayed.
  EXPECT_EQ(pool.HomeOf(cold, 0), 0);
  EXPECT_EQ(pool.HomeOf(hot, 0), 0);
  EXPECT_NE(pool.HomeOf(hot, 3 * 16), 0);
  EXPECT_EQ(pool.migrations(), 2u);
  std::string err;
  EXPECT_TRUE(pool.Audit(&err)) << err;
  // No remote slabs for an unknown tenant, nothing to do.
  EXPECT_EQ(pool.RebalanceTenant(99, 4), 0u);
}

TEST(Pool, RebalanceTenantStopsWhenNoServerHasRoom) {
  sim::Simulator sim;
  ServerPool pool(sim, TwoServerPool(2));
  std::uint32_t pid = pool.RegisterPartition(16 * 4);
  for (std::uint64_t slab = 0; slab < 4; ++slab)
    pool.EnsurePlaced(pid, slab * 16);  // both servers at capacity
  EXPECT_EQ(pool.RebalanceTenant(pid, 4), 0u);
  EXPECT_EQ(pool.migrations(), 0u);
  std::string err;
  EXPECT_TRUE(pool.Audit(&err)) << err;
}

// --- fault-plan server targeting --------------------------------------

TEST(FaultPlanServers, UntargetedLinesParseExactlyAsBefore) {
  auto plan = fault::FaultPlan::Parse(
      "latency 10 20 5\n"
      "stall 30 40 in\n"
      "blackout 50 60\n");
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->latency_spikes()[0].server, fault::kAllServers);
  EXPECT_EQ(plan->qp_stalls()[0].server, fault::kAllServers);
  EXPECT_EQ(plan->blackouts()[0].server, fault::kAllServers);
}

TEST(FaultPlanServers, TargetedLinesCarryTheServer) {
  auto plan = fault::FaultPlan::Parse(
      "latency 10 20 5 in server=2\n"
      "latency 10 20 5 server=1\n"
      "stall 30 40 server=0\n"
      "blackout 50 60 server=3\n");
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->latency_spikes()[0].server, 2);
  EXPECT_EQ(plan->latency_spikes()[1].server, 1);
  EXPECT_EQ(plan->qp_stalls()[0].server, 0);
  EXPECT_EQ(plan->blackouts()[0].server, 3);
}

TEST(FaultPlanServers, MalformedServerTargetIsRejected) {
  std::string err;
  EXPECT_FALSE(fault::FaultPlan::Parse("blackout 50 60 server=x", &err));
  EXPECT_NE(err.find("server"), std::string::npos);
  EXPECT_FALSE(fault::FaultPlan::Parse("blackout 50 60 server=-4", &err));
}

TEST(FaultPlanServers, ServerMatchesSemantics) {
  using fault::ServerMatches;
  EXPECT_TRUE(ServerMatches(fault::kAllServers, 3));
  EXPECT_TRUE(ServerMatches(3, fault::kAllServers));  // un-pooled request
  EXPECT_TRUE(ServerMatches(2, 2));
  EXPECT_FALSE(ServerMatches(2, 3));
}

}  // namespace
}  // namespace canvas::remote

// --- full-system tests -------------------------------------------------

namespace canvas::core {
namespace {

ExperimentSpec PooledSpec(const std::string& topology, double scale = 0.05) {
  ExperimentSpec spec;
  spec.config = *SystemConfig::FromName("canvas");
  spec.config.remote = remote::PoolConfig::FromName(topology);
  AppBuild a;
  a.name = "memcached";
  a.scale = scale;
  a.ratio = 0.25;
  a.seed = 7;
  AppBuild b = a;
  b.name = "snappy";
  spec.apps = {a, b};
  return spec;
}

std::string RunToJson(const ExperimentSpec& spec, const std::string& label) {
  Experiment exp(spec);
  EXPECT_TRUE(exp.Run());
  std::ostringstream os;
  WriteJson(os, exp.system(), label);
  return os.str();
}

TEST(RemoteSystem, TransparentSingleServerMatchesNoPoolBitForBit) {
  // The pool of one unlimited zero-cost server routes every request through
  // the pool layer yet must not move a single event: the per-app CSV (which
  // has no pool-presence section) must be byte-identical.
  ExperimentSpec pooled = PooledSpec("transparent");
  ExperimentSpec plain = pooled;
  plain.config.remote = remote::PoolConfig::FromName("single");

  Experiment pe(pooled);
  ASSERT_TRUE(pe.Run());
  Experiment qe(plain);
  ASSERT_TRUE(qe.Run());
  std::ostringstream a, b;
  WriteCsv(a, pe.system(), "x");
  WriteCsv(b, qe.system(), "x");
  EXPECT_EQ(a.str(), b.str());
  ASSERT_NE(pe.system().pool(), nullptr);
  EXPECT_EQ(qe.system().pool(), nullptr);
  EXPECT_GT(pe.system().pool()->servers()[0].requests_served, 0u);
}

TEST(RemoteSystem, PooledRunsAreDeterministic) {
  // Same seed, same topology => byte-identical full report including the
  // per-server section. Runs under the `determinism` ctest label.
  ExperimentSpec spec = PooledSpec("pool4-harvest");
  EXPECT_EQ(RunToJson(spec, "det"), RunToJson(spec, "det"));
}

TEST(RemoteSystem, HarvestChurnKeepsEveryInvariant) {
  // Tight capacity + harvesting forces migrations and disk evictions while
  // the co-run is swapping. The oracles: no stale read is ever served (a
  // migrated/evicted slab keeps its content_version), the slab tables stay
  // single-homed and conserved, and capacity is respected.
  ExperimentSpec spec = PooledSpec("pool4-harvest");
  Experiment exp(spec);
  ASSERT_TRUE(exp.Run());
  const SwapSystem& sys = exp.system();
  const remote::ServerPool* pool = sys.pool();
  ASSERT_NE(pool, nullptr);
  EXPECT_GT(pool->slabs_placed(), 0u);
  EXPECT_GT(pool->harvest_events(), 0u);
  for (std::size_t i = 0; i < sys.app_count(); ++i)
    EXPECT_EQ(sys.metrics(i).stale_reads, 0u) << sys.metrics(i).name;
  std::string err;
  EXPECT_TRUE(pool->Audit(&err)) << err;
  for (const remote::ServerState& s : pool->servers())
    EXPECT_LE(s.slabs_held, s.capacity_slabs) << s.cfg.name;
}

TEST(RemoteSystem, PerServerBlackoutFailsOverOnlyThatServer) {
  // A blackout targeting server 0 of a 2-server pool evicts its slabs to
  // the disk backend and the run still finishes with zero stale reads;
  // the co-run never takes the global failover path.
  ExperimentSpec spec = PooledSpec("pool2");
  auto plan = std::make_shared<fault::FaultPlan>();
  plan->AddBlackout(2 * kMillisecond, 10 * kMillisecond, /*server=*/0);
  spec.config.fault_plan = plan;
  Experiment exp(spec);
  ASSERT_TRUE(exp.Run());
  const SwapSystem& sys = exp.system();
  const remote::ServerPool* pool = sys.pool();
  ASSERT_NE(pool, nullptr);
  for (std::size_t i = 0; i < sys.app_count(); ++i) {
    EXPECT_EQ(sys.metrics(i).stale_reads, 0u);
    EXPECT_EQ(sys.metrics(i).failovers, 0u);  // targeted, not global
  }
  EXPECT_FALSE(pool->servers()[0].down);  // window ended -> back up
  std::string err;
  EXPECT_TRUE(pool->Audit(&err)) << err;
}

TEST(RemoteSystem, ReportCarriesTheRemoteSectionOnlyWhenPooled) {
  std::string pooled = RunToJson(PooledSpec("pool2"), "r");
  ExperimentSpec plain = PooledSpec("single");
  std::string unpooled = RunToJson(plain, "r");
  EXPECT_NE(pooled.find("\"remote\""), std::string::npos);
  EXPECT_EQ(unpooled.find("\"remote\""), std::string::npos);
}

}  // namespace
}  // namespace canvas::core
