// Open-loop arrival processes and the serving request stream (DESIGN.md §13).
//
// Closed-loop streams (patterns.h) issue the next access as soon as the
// previous one retires, so a swap stall slows the *offered* load and hides
// tail latency (coordinated omission). Online serving is open-loop: requests
// arrive on an absolute schedule that does not care whether the server is
// stalled. ArrivalProcess generates that schedule — homogeneous Poisson,
// diurnal (sinusoidally modulated), or flash-crowd (a rate-multiplied burst
// window) — via Lewis–Shedler thinning of the peak-rate process, seeded and
// fully deterministic. OpenLoopZipfStream pairs the schedule with the
// existing Zipfian key-popularity model and paces itself against the DES
// clock through ThreadStream::NextAt; when the system falls behind it serves
// back-to-back and records the lag instead of silently stretching the
// schedule.
//
// LoadControl is the one-way valve the QoS plane (src/serving) turns:
// admission deferral and probabilistic shedding, plus the offered/shed/
// served counters the serving report aggregates. Both sides run on the
// root LP, so every control read/write is at a deterministic point in
// virtual time.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "common/rng.h"
#include "common/types.h"
#include "workload/patterns.h"
#include "workload/workload.h"

namespace canvas::workload {

enum class ArrivalKind : std::uint8_t {
  kPoisson,     ///< homogeneous rate
  kDiurnal,     ///< rate * (1 + amplitude * sin(2*pi*t / period))
  kFlashCrowd,  ///< rate, times `multiplier` inside the burst window
};

const char* ArrivalKindName(ArrivalKind kind);
std::optional<ArrivalKind> ArrivalKindFromName(const std::string& name);

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Mean request rate (requests per simulated second).
  double rate_rps = 50'000;
  // --- diurnal ---
  double diurnal_amplitude = 0.5;  ///< in [0, 1)
  SimDuration diurnal_period = 2 * kSecond;
  // --- flash crowd ---
  SimTime flash_start = 1 * kSecond;
  SimDuration flash_duration = 500 * kMillisecond;
  double flash_multiplier = 8.0;

  /// Instantaneous rate lambda(t), requests per second.
  double RateAt(SimTime t) const;
  /// Upper bound on RateAt over all t (thinning envelope).
  double PeakRate() const;
};

/// Deterministic non-homogeneous Poisson arrival generator (Lewis–Shedler
/// thinning): candidate arrivals are exponential gaps at the peak rate,
/// accepted with probability lambda(t)/peak. For the homogeneous case the
/// acceptance is always 1 and this degenerates to the textbook exponential
/// inter-arrival process.
class ArrivalProcess {
 public:
  ArrivalProcess(ArrivalConfig cfg, std::uint64_t seed);

  /// Consume and return the next arrival instant; strictly increasing.
  SimTime NextArrival();

  /// Drop every arrival before `t` (admission deferral fast-forward).
  void AdvanceTo(SimTime t) {
    if (clock_ < t) clock_ = t;
  }

  const ArrivalConfig& config() const { return cfg_; }

 private:
  ArrivalConfig cfg_;
  Rng rng_;
  double peak_;
  SimTime clock_ = 0;
};

/// Control block shared between a tenant's open-loop streams and the QoS
/// plane. Plain struct, no locking: everything runs on the root LP.
struct LoadControl {
  // --- knobs (written by the QoS plane) ---
  /// Requests arriving before this instant are deferred to it.
  SimTime admit_time = 0;
  /// Probability an arriving request is shed (dropped unserved).
  double shed_fraction = 0.0;

  // --- counters (written by the streams) ---
  std::uint64_t offered = 0;   ///< arrivals generated inside the horizon
  std::uint64_t shed = 0;      ///< dropped by admission control
  std::uint64_t deferred = 0;  ///< pushed to admit_time before serving
  std::uint64_t served = 0;    ///< accesses actually emitted
  /// Worst observed service lag: how far behind its arrival schedule the
  /// tenant fell (the open-loop queueing delay the closed-loop model hides).
  SimDuration max_lag = 0;
};

/// Open-loop Zipfian request stream: each request is one page access drawn
/// from the memcached-style Zipfian popularity model, issued at its
/// scheduled arrival instant (or as soon as possible after, recording the
/// lag). Finishes at the horizon.
class OpenLoopZipfStream : public ThreadStream {
 public:
  struct Params {
    Region region;
    /// Per-thread arrival schedule. Poisson superposition: give each of N
    /// threads the tenant rate divided by N.
    ArrivalConfig arrival;
    /// No arrivals at or beyond this instant; the stream then finishes.
    SimTime horizon = 2 * kSecond;
    double theta = 0.99;
    /// On-CPU service time per request.
    std::uint32_t service_ns = 300;
    double write_fraction = 0.1;
    std::uint64_t seed = 1;
    /// Optional QoS valve + stats; shared across the tenant's threads.
    std::shared_ptr<LoadControl> control;
  };

  explicit OpenLoopZipfStream(Params p);
  std::optional<Access> Next() override { return NextAt(last_now_); }
  std::optional<Access> NextAt(SimTime now) override;

 private:
  Params p_;
  ArrivalProcess arrivals_;
  Rng rng_;
  ZipfianGenerator zipf_;
  std::vector<PageId> perm_;  // decorrelate rank from page position
  SimTime last_now_ = 0;
};

}  // namespace canvas::workload
