// canvasctl: command-line driver for arbitrary swap-system experiments.
//
// Compose any co-run from the 14 Table 2 applications, pick a system
// preset (or toggle features), and get human tables, CSV, or JSON out —
// the adoption surface for using this repository as a far-memory
// swap-policy simulator rather than only as a paper reproduction.
//
// Subcommands:
//   canvasctl run   [options] app[:cores] ...   one experiment
//   canvasctl sweep [options] app[:cores] ...   grid of experiments on a
//                                               worker pool (SweepEngine)
//   canvasctl serve [options] [tenant[:rate[:mods]] ...]
//                                               online-serving tail-latency
//                                               harness (open-loop load,
//                                               per-tenant SLOs, QoS plane)
//   canvasctl churn [options] [template[:scale[:weight]] ...]
//                                               cluster-day tenant churn:
//                                               trace-driven arrival and
//                                               departure at thousand-tenant
//                                               scale (DESIGN.md §15)
//   canvasctl list-apps                         Table 2 application names
//   canvasctl list-axes                         every sweep axis + values
//   canvasctl list-systems                      system presets + aliases
//   canvasctl list-servers                      server-pool topologies
//   canvasctl list-tiers                        hybrid local-tier presets
//
// Axis flags are unified across run/sweep/serve/churn: every plural form
// (--systems= --topologies= --tiers= --granularities= --arrivals=
// --harvests= --seeds= --ratios= --scales=) is REPEATABLE — the first occurrence replaces the
// default, later occurrences append — and takes comma-separated lists.
// The singular forms (--system= --topology= --tier= --arrival= --harvest=
// --seed= --ratio= --scale=) are deprecated shims for the plural spelling
// and behave identically.
//
// Shared options (run + sweep):
//   --system=NAME    preset from `canvasctl list-systems` (default canvas)
//   --topology=T     server-pool topology from `canvasctl list-servers`
//                    (default single)
//   --tier=T         hybrid local-tier preset from `canvasctl list-tiers`
//                    (default none = two-level hierarchy)
//   --granularity=G  swap granularity: page | object (default page;
//                    `object` enables behaviour-scheduled object fetching
//                    for registry-aware workloads such as `chase`)
//   --scale=S        workload scale factor (default 0.3)
//   --ratio=R        local memory fraction of working set (default 0.25)
//   --seed=N         workload seed (default 7)
//   --no-adaptive    disable adaptive swap-entry allocation
//   --no-horizontal  disable timeliness-based prefetch dropping
//   --prefetcher=P   none | readahead | leap | two-tier (override preset)
//   --sim-threads=N  parallel DES engine threads per run (default 1 =
//                    serial; needs a multi-server topology, results are
//                    byte-identical either way)
//   --fault-plan=F   inject faults from a plan file (one directive per
//                    line, times in microseconds: `blackout START END
//                    [SERVER]`, `latency START END EXTRA_US [in|out|both]
//                    [SERVER]`, `tier-latency START END EXTRA_US`,
//                    `tier-freeze START END`; full grammar in
//                    src/fault/fault_plan.h); a sweep applies the plan
//                    to every grid point
//
// run-only options:
//   --format=F       table | csv | json (default table)
//
// sweep-only options (comma-separated lists expand as a full grid):
//   --systems=A,B    preset axis (overrides --system)
//   --topologies=T1,T2  server-topology axis (overrides --topology)
//   --tiers=T1,T2    local-tier axis (overrides --tier; composes with the
//                    topology axis as a full grid)
//   --granularities=G1,G2  swap-granularity axis (page | object)
//   --ratios=R1,R2   local-memory-ratio axis (overrides --ratio)
//   --scales=S1,S2   scale axis (overrides --scale)
//   --seeds=N1,N2    seed axis (overrides --seed)
//   --jobs=N         worker threads (default: hardware concurrency)
//   --max-live=N     cap concurrently live swap systems (default: jobs)
//   --thread-budget=N  total thread budget shared by --jobs and
//                    --sim-threads: concurrent runs are clamped to
//                    budget / sim-threads so the two never oversubscribe
//   --cancel-on-failure   stop dispatching after the first failed run
//   --progress       progress line on stderr
//   --out=PATH       write the sweep JSON there instead of stdout
//
// serve-only options (default topology is pool4, not single):
//   tenant syntax    name[:rate_rps[:mods]] where mods is a +-joined list
//                    of `be` (best-effort: sheddable, never SLO-escalated)
//                    and `load` (the --arrivals axis retargets only
//                    load-marked tenants). Default co-run when no tenant is
//                    given: frontend:150000:load + batch:50000:be.
//   --arrivals=A,B   arrival-process axis: poisson | diurnal | flash
//   --horizon=SEC    open-loop generation horizon per tenant (default 2.0)
//   --slo-p99-us=N   per-window p99 fault-latency SLO, microseconds
//   --slo-p999-us=N  per-window p99.9 SLO, microseconds
//   --no-qos         disable the QoS/admission plane (observe-only SLOs)
//   --qos-curve=F    per-window supply curve CSV (`time_ms,scale` rows,
//                    serving/supply_curve.h) scaling every tenant's SLO
//                    bounds each control tick
//   (plus the sweep execution options: --jobs, --thread-budget, --out, ...)
//
// The pre-subcommand flat form (`canvasctl --system=... app ...`) was
// deprecated for several releases and is now rejected with a migration
// hint; spell it `canvasctl run ...`.
//
// Examples:
//   canvasctl run spark-lr snappy memcached xgboost
//   canvasctl run --system=linux --format=csv cassandra:24 memcached:4
//   canvasctl sweep --systems=linux,canvas --ratios=0.25,0.5 --jobs=8
//       spark-lr snappy memcached xgboost        (one command line)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/experiment.h"
#include "core/report.h"
#include "fault/fault_plan.h"
#include "orchestrator/sweep.h"
#include "remote/harvest.h"
#include "remote/pool.h"
#include "serving/harness.h"
#include "serving/supply_curve.h"
#include "tier/tier.h"
#include "workload/apps.h"
#include "workload/churn.h"

using namespace canvas;

namespace {

/// One repeatable axis flag: the first explicit occurrence replaces the
/// built-in default, later occurrences append — so
/// `--systems=canvas --systems=linux` equals `--systems=canvas,linux`.
template <typename T>
struct Axis {
  std::vector<T> values;
  bool set = false;

  Axis(std::initializer_list<T> defaults) : values(defaults) {}
  void Add(std::vector<T> items) {
    if (!set) values.clear();
    set = true;
    for (T& v : items) values.push_back(std::move(v));
  }
  operator const std::vector<T>&() const { return values; }
  const T& front() const { return values.front(); }
};

struct Options {
  Axis<std::string> systems = {"canvas"};
  Axis<std::string> topologies = {"single"};
  Axis<std::string> tiers = {"none"};
  Axis<std::string> granularities = {"page"};
  Axis<std::string> harvests = {"closed-loop"};
  Axis<double> ratios = {0.25};
  Axis<double> scales = {0.3};
  Axis<std::uint64_t> seeds = {7};
  std::string format = "table";
  orchestrator::FeatureOverrides overrides;
  unsigned sim_threads = 1;  // parallel DES engine threads per run
  // sweep execution
  unsigned jobs = 0;  // 0 = hardware concurrency
  unsigned max_live = 0;
  unsigned thread_budget = 0;  // 0 = unbounded
  bool cancel_on_failure = false;
  bool progress = false;
  std::string out;
  std::vector<std::pair<std::string, std::uint32_t>> apps;
  // serve-only
  Axis<std::string> arrivals = {"poisson"};
  bool qos = true;
  // serve-only: supply curve CSV (serving::SupplyCurve, `time_ms,scale`)
  std::string qos_curve_path;
  double horizon_sec = 2.0;
  serving::SloConfig slo;
  std::vector<serving::TenantSpec> tenants;
  // churn-only (the horizon is shared with serve via --horizon)
  workload::ChurnSpec churn;
  // run-only: fault-plan file (FaultPlan grammar, times in microseconds)
  std::string fault_plan_path;
};

int Usage(FILE* to, int code) {
  std::fprintf(
      to,
      "usage: canvasctl run   [options] app[:cores] ...\n"
      "       canvasctl sweep [--systems=A,B] [--ratios=..] [--scales=..]\n"
      "                       [--seeds=..] [--jobs=N] [--max-live=N]\n"
      "                       [--cancel-on-failure] [--progress] [--out=F]\n"
      "                       app[:cores] ...\n"
      "       canvasctl serve [--arrivals=poisson,diurnal,flash]\n"
      "                       [--horizon=SEC] [--slo-p99-us=N] [--no-qos]\n"
      "                       [--qos-curve=FILE]\n"
      "                       [sweep execution options]\n"
      "                       [tenant[:rate_rps[:mods]] ...]\n"
      "       canvasctl churn [--churn-kind=poisson|diurnal|trace]\n"
      "                       [--rate=PER_SEC] [--mean-lifetime-ms=N]\n"
      "                       [--max-tenants=N] [--max-concurrent=N]\n"
      "                       [--horizon=SEC] [--trace=FILE]\n"
      "                       [--harvests=none,steady,bursty,closed-loop]\n"
      "                       [sweep execution options]\n"
      "                       [template[:scale[:weight]] ...]\n"
      "       canvasctl list-apps | list-axes | list-systems |\n"
      "                 list-servers | list-tiers\n"
      "options: --system=NAME --topology=T --tier=T --granularity=G\n"
      "         --ratio=R --scale=S\n"
      "         --seed=N --format=table|csv|json --no-adaptive\n"
      "         --no-horizontal --prefetcher=none|readahead|leap|two-tier\n"
      "         --sim-threads=N --fault-plan=FILE\n"
      "axes:    every plural flag (--systems= --topologies= --tiers=\n"
      "         --granularities= --arrivals= --harvests= --seeds=\n"
      "         --ratios= --scales=) is\n"
      "         repeatable and takes comma lists; values per axis in\n"
      "         `canvasctl list-axes`. Singular forms are deprecated\n"
      "         aliases.\n"
      "sweep:   --jobs=N --max-live=N --thread-budget=N\n"
      "         --cancel-on-failure --progress --out=F\n"
      "serve:   tenant mods are `be` (best-effort) and `load` (arrival\n"
      "         axis target), joined with '+': e.g. frontend:150000:load\n"
      "churn:   templates are app names with optional footprint scale and\n"
      "         arrival weight, e.g. `memcached:0.02:3 snappy:0.01:1`\n");
  return code;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

core::SystemConfig ResolveSystem(const std::string& name,
                                 const orchestrator::FeatureOverrides& ov) {
  auto cfg = core::SystemConfig::FromName(name);
  if (!cfg) {
    std::fprintf(stderr,
                 "unknown system '%s' (see `canvasctl list-systems`)\n",
                 name.c_str());
    std::exit(2);
  }
  ov.Apply(*cfg);
  return *cfg;
}

std::vector<double> ParseDoubles(const std::string& s) {
  std::vector<double> out;
  for (const std::string& v : SplitCommas(s)) out.push_back(std::atof(v.c_str()));
  return out;
}

std::vector<std::uint64_t> ParseU64s(const std::string& s) {
  std::vector<std::uint64_t> out;
  for (const std::string& v : SplitCommas(s))
    out.push_back(std::strtoull(v.c_str(), nullptr, 10));
  return out;
}

/// The unified axis surface: plural flags are repeatable comma lists; the
/// singular spellings are deprecated aliases for the same axis.
bool ParseAxis(const std::string& arg, Options& opt) {
  auto value = [&](const char* prefix) {
    return arg.substr(std::strlen(prefix));
  };
  if (arg.rfind("--systems=", 0) == 0) {
    opt.systems.Add(SplitCommas(value("--systems=")));
  } else if (arg.rfind("--system=", 0) == 0) {
    opt.systems.Add(SplitCommas(value("--system=")));
  } else if (arg.rfind("--topologies=", 0) == 0) {
    opt.topologies.Add(SplitCommas(value("--topologies=")));
  } else if (arg.rfind("--topology=", 0) == 0) {
    opt.topologies.Add(SplitCommas(value("--topology=")));
  } else if (arg.rfind("--tiers=", 0) == 0) {
    opt.tiers.Add(SplitCommas(value("--tiers=")));
  } else if (arg.rfind("--tier=", 0) == 0) {
    opt.tiers.Add(SplitCommas(value("--tier=")));
  } else if (arg.rfind("--granularities=", 0) == 0) {
    opt.granularities.Add(SplitCommas(value("--granularities=")));
  } else if (arg.rfind("--granularity=", 0) == 0) {
    opt.granularities.Add(SplitCommas(value("--granularity=")));
  } else if (arg.rfind("--harvests=", 0) == 0) {
    opt.harvests.Add(SplitCommas(value("--harvests=")));
  } else if (arg.rfind("--harvest=", 0) == 0) {
    opt.harvests.Add(SplitCommas(value("--harvest=")));
  } else if (arg.rfind("--arrivals=", 0) == 0) {
    opt.arrivals.Add(SplitCommas(value("--arrivals=")));
  } else if (arg.rfind("--arrival=", 0) == 0) {
    opt.arrivals.Add(SplitCommas(value("--arrival=")));
  } else if (arg.rfind("--ratios=", 0) == 0) {
    opt.ratios.Add(ParseDoubles(value("--ratios=")));
  } else if (arg.rfind("--ratio=", 0) == 0) {
    opt.ratios.Add(ParseDoubles(value("--ratio=")));
  } else if (arg.rfind("--scales=", 0) == 0) {
    opt.scales.Add(ParseDoubles(value("--scales=")));
  } else if (arg.rfind("--scale=", 0) == 0) {
    opt.scales.Add(ParseDoubles(value("--scale=")));
  } else if (arg.rfind("--seeds=", 0) == 0) {
    opt.seeds.Add(ParseU64s(value("--seeds=")));
  } else if (arg.rfind("--seed=", 0) == 0) {
    opt.seeds.Add(ParseU64s(value("--seed=")));
  } else {
    return false;
  }
  return true;
}

bool ParseCommon(const std::string& arg, Options& opt) {
  auto value = [&](const char* prefix) {
    return arg.substr(std::strlen(prefix));
  };
  if (ParseAxis(arg, opt)) {
    return true;
  } else if (arg.rfind("--format=", 0) == 0) {
    opt.format = value("--format=");
  } else if (arg.rfind("--prefetcher=", 0) == 0) {
    auto kind = orchestrator::PrefetcherFromName(value("--prefetcher="));
    if (!kind) {
      std::fprintf(stderr, "unknown prefetcher '%s'\n",
                   value("--prefetcher=").c_str());
      std::exit(2);
    }
    opt.overrides.prefetcher = *kind;
  } else if (arg.rfind("--sim-threads=", 0) == 0) {
    opt.sim_threads =
        std::max(1u, unsigned(std::atoi(value("--sim-threads=").c_str())));
  } else if (arg.rfind("--fault-plan=", 0) == 0) {
    opt.fault_plan_path = value("--fault-plan=");
  } else if (arg == "--no-adaptive") {
    opt.overrides.adaptive_alloc = false;
  } else if (arg == "--no-horizontal") {
    opt.overrides.horizontal_sched = false;
  } else {
    return false;
  }
  return true;
}

/// Load the fault plan named by --fault-plan= (exit 2 on parse errors);
/// returns null when the option was not given.
std::shared_ptr<const fault::FaultPlan> ResolvePlan(const Options& opt) {
  if (opt.fault_plan_path.empty()) return nullptr;
  std::string err;
  auto plan = fault::FaultPlan::LoadFile(opt.fault_plan_path, &err);
  if (!plan) {
    std::fprintf(stderr, "bad fault plan '%s': %s\n",
                 opt.fault_plan_path.c_str(), err.c_str());
    std::exit(2);
  }
  return std::make_shared<const fault::FaultPlan>(std::move(*plan));
}

bool ParseSweepOnly(const std::string& arg, Options& opt) {
  auto value = [&](const char* prefix) {
    return arg.substr(std::strlen(prefix));
  };
  if (arg.rfind("--jobs=", 0) == 0) {
    opt.jobs = unsigned(std::atoi(value("--jobs=").c_str()));
  } else if (arg.rfind("--max-live=", 0) == 0) {
    opt.max_live = unsigned(std::atoi(value("--max-live=").c_str()));
  } else if (arg.rfind("--thread-budget=", 0) == 0) {
    opt.thread_budget =
        unsigned(std::atoi(value("--thread-budget=").c_str()));
  } else if (arg == "--cancel-on-failure") {
    opt.cancel_on_failure = true;
  } else if (arg == "--progress") {
    opt.progress = true;
  } else if (arg.rfind("--out=", 0) == 0) {
    opt.out = value("--out=");
  } else {
    return false;
  }
  return true;
}

bool ParseServeOnly(const std::string& arg, Options& opt) {
  auto value = [&](const char* prefix) {
    return arg.substr(std::strlen(prefix));
  };
  if (arg.rfind("--horizon=", 0) == 0) {
    opt.horizon_sec = std::atof(value("--horizon=").c_str());
  } else if (arg.rfind("--slo-p99-us=", 0) == 0) {
    opt.slo.p99_ns = SimTime(std::atof(value("--slo-p99-us=").c_str()) * 1e3);
  } else if (arg.rfind("--slo-p999-us=", 0) == 0) {
    opt.slo.p999_ns = SimTime(std::atof(value("--slo-p999-us=").c_str()) * 1e3);
  } else if (arg == "--no-qos") {
    opt.qos = false;
  } else if (arg.rfind("--qos-curve=", 0) == 0) {
    opt.qos_curve_path = value("--qos-curve=");
  } else {
    return false;
  }
  return true;
}

// Tenant syntax: name[:rate_rps[:mods]], mods a '+'-joined list of
// `be` (best-effort) and `load` (arrival-axis target).
bool ParseServeTenant(const std::string& arg, Options& opt) {
  serving::TenantSpec t;
  auto c1 = arg.find(':');
  t.name = arg.substr(0, c1);
  if (t.name.empty()) return false;
  if (c1 != std::string::npos) {
    auto c2 = arg.find(':', c1 + 1);
    t.arrival.rate_rps = std::atof(arg.substr(c1 + 1, c2 - c1 - 1).c_str());
    if (t.arrival.rate_rps <= 0) {
      std::fprintf(stderr, "tenant '%s': rate must be > 0\n", t.name.c_str());
      std::exit(2);
    }
    if (c2 != std::string::npos) {
      for (const std::string& mod : SplitCommas(arg.substr(c2 + 1))) {
        std::size_t start = 0;
        while (start <= mod.size()) {
          std::size_t plus = mod.find('+', start);
          std::string m = mod.substr(start, plus == std::string::npos
                                                ? std::string::npos
                                                : plus - start);
          if (m == "be") {
            t.best_effort = true;
          } else if (m == "load") {
            t.load_tenant = true;
          } else if (!m.empty()) {
            std::fprintf(stderr, "tenant '%s': unknown mod '%s'\n",
                         t.name.c_str(), m.c_str());
            std::exit(2);
          }
          if (plus == std::string::npos) break;
          start = plus + 1;
        }
      }
    }
  }
  opt.tenants.push_back(std::move(t));
  return true;
}

bool ParseChurnOnly(const std::string& arg, Options& opt) {
  auto value = [&](const char* prefix) {
    return arg.substr(std::strlen(prefix));
  };
  if (arg.rfind("--churn-kind=", 0) == 0) {
    auto kind = workload::ChurnKindFromName(value("--churn-kind="));
    if (!kind) {
      std::fprintf(stderr,
                   "unknown churn kind '%s' (poisson | diurnal | trace)\n",
                   value("--churn-kind=").c_str());
      std::exit(2);
    }
    opt.churn.kind = *kind;
  } else if (arg.rfind("--rate=", 0) == 0) {
    opt.churn.arrival_rate_per_sec = std::atof(value("--rate=").c_str());
  } else if (arg.rfind("--mean-lifetime-ms=", 0) == 0) {
    opt.churn.mean_lifetime =
        SimDuration(std::atof(value("--mean-lifetime-ms=").c_str()) *
                    double(kMillisecond));
  } else if (arg.rfind("--min-lifetime-ms=", 0) == 0) {
    opt.churn.min_lifetime =
        SimDuration(std::atof(value("--min-lifetime-ms=").c_str()) *
                    double(kMillisecond));
  } else if (arg.rfind("--max-tenants=", 0) == 0) {
    opt.churn.max_tenants =
        std::strtoull(value("--max-tenants=").c_str(), nullptr, 10);
  } else if (arg.rfind("--max-concurrent=", 0) == 0) {
    opt.churn.max_concurrent =
        std::strtoull(value("--max-concurrent=").c_str(), nullptr, 10);
  } else if (arg.rfind("--trace=", 0) == 0) {
    opt.churn.kind = workload::ChurnKind::kTrace;
    opt.churn.trace_csv = value("--trace=");
  } else {
    return false;
  }
  return true;
}

// Template syntax: app[:scale[:weight]] — an arrival-weighted tenant
// archetype, e.g. `memcached:0.02:3`.
bool ParseChurnTemplate(const std::string& arg, Options& opt) {
  workload::TenantTemplate t;
  auto c1 = arg.find(':');
  t.app = arg.substr(0, c1);
  if (t.app.empty()) return false;
  if (c1 != std::string::npos) {
    auto c2 = arg.find(':', c1 + 1);
    t.scale = std::atof(arg.substr(c1 + 1, c2 - c1 - 1).c_str());
    if (t.scale <= 0) {
      std::fprintf(stderr, "template '%s': scale must be > 0\n",
                   t.app.c_str());
      std::exit(2);
    }
    if (c2 != std::string::npos)
      t.weight = std::atof(arg.substr(c2 + 1).c_str());
  }
  opt.churn.templates.push_back(std::move(t));
  return true;
}

bool ParseApp(const std::string& arg, Options& opt) {
  auto colon = arg.find(':');
  std::string name = arg.substr(0, colon);
  std::uint32_t cores =
      colon == std::string::npos
          ? core::PaperCores(name)
          : std::uint32_t(std::atoi(arg.substr(colon + 1).c_str()));
  opt.apps.emplace_back(name, cores);
  return true;
}

int ListApps() {
  for (const std::string& n : workload::ManagedAppNames()) std::puts(n.c_str());
  for (const char* n : {"xgboost", "snappy", "memcached", "chase"})
    std::puts(n);
  return 0;
}

int ListSystems() {
  TablePrinter t({"name", "aliases", "description"});
  for (const core::PresetInfo& p : core::SystemConfig::ListPresets()) {
    std::string aliases;
    for (std::string_view a : p.aliases) {
      if (!aliases.empty()) aliases += ", ";
      aliases += a;
    }
    t.AddRow({std::string(p.name), aliases.empty() ? "-" : aliases,
              std::string(p.description)});
  }
  t.Print();
  return 0;
}

int ListServers() {
  TablePrinter t({"name", "description"});
  for (const auto& [name, description] : remote::PoolConfig::ListTopologies())
    t.AddRow({name, description});
  t.Print();
  return 0;
}

remote::PoolConfig ResolveTopology(const std::string& name) {
  try {
    return remote::PoolConfig::FromName(name);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s (see `canvasctl list-servers`)\n", e.what());
    std::exit(2);
  }
}

int ListTiers() {
  TablePrinter t({"name", "description"});
  for (const auto& [name, description] : tier::TierConfig::ListTiers())
    t.AddRow({name, description});
  t.Print();
  return 0;
}

tier::TierConfig ResolveTier(const std::string& name) {
  try {
    return tier::TierConfig::FromName(name);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s (see `canvasctl list-tiers`)\n", e.what());
    std::exit(2);
  }
}

/// Map a --granularity value to SystemConfig::objects.enabled (exit 2 on
/// an unknown name).
bool ResolveGranularity(const std::string& name) {
  auto enabled = orchestrator::GranularityFromName(name);
  if (!enabled) {
    std::fprintf(stderr, "unknown granularity '%s' (page | object)\n",
                 name.c_str());
    std::exit(2);
  }
  return *enabled;
}

remote::HarvestConfig ResolveHarvest(const std::string& name) {
  try {
    return remote::HarvestConfig::FromName(name);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s (see `canvasctl list-axes`)\n", e.what());
    std::exit(2);
  }
}

/// The one place every axis and its value registry is enumerated: each row
/// is (axis flag, value, description), fed from the same FromName
/// registries the parsers resolve through.
int ListAxes() {
  TablePrinter t({"axis", "value", "description"});
  for (const core::PresetInfo& p : core::SystemConfig::ListPresets())
    t.AddRow({"--systems", std::string(p.name), std::string(p.description)});
  for (const auto& [name, description] : remote::PoolConfig::ListTopologies())
    t.AddRow({"--topologies", name, description});
  for (const auto& [name, description] : tier::TierConfig::ListTiers())
    t.AddRow({"--tiers", name, description});
  for (const auto& [name, description] : remote::HarvestConfig::ListPresets())
    t.AddRow({"--harvests", name, description});
  t.AddRow({"--granularities", "page", "classic page-granular demand swap"});
  t.AddRow({"--granularities", "object",
            "behaviour-scheduled object fetching (DESIGN.md \xC2\xA7"
            "16)"});
  for (const char* name : {"poisson", "diurnal", "flash"})
    t.AddRow({"--arrivals", name, "serving arrival process"});
  for (const char* name : {"poisson", "diurnal", "trace"})
    t.AddRow({"--churn-kind", name, "tenant arrival generator"});
  t.Print();
  return 0;
}

int RunOne(const Options& opt) {
  auto cfg = ResolveSystem(opt.systems.front(), opt.overrides);
  cfg.remote = ResolveTopology(opt.topologies.front());
  cfg.tier = ResolveTier(opt.tiers.front());
  cfg.objects.enabled = ResolveGranularity(opt.granularities.front());
  // An explicit --harvest overrides the topology preset's own schedule.
  if (opt.harvests.set)
    cfg.remote.harvest = ResolveHarvest(opt.harvests.front());
  cfg.sim_threads = opt.sim_threads;
  if (auto plan = ResolvePlan(opt)) cfg.fault_plan = std::move(plan);
  core::ExperimentSpec spec;
  spec.config = cfg;
  for (auto& [name, cores] : opt.apps) {
    core::AppBuild b;
    b.name = name;
    b.scale = opt.scales.front();
    b.ratio = opt.ratios.front();
    b.cores = cores;
    b.seed = opt.seeds.front();
    spec.apps.push_back(std::move(b));
  }

  core::Experiment exp(spec);
  bool finished = exp.Run();

  if (opt.format == "csv") {
    core::WriteCsv(std::cout, exp.system(), cfg.name);
  } else if (opt.format == "json") {
    core::WriteJson(std::cout, exp.system(), cfg.name);
  } else {
    PrintBanner(cfg.name + (finished ? "" : "  [DID NOT FINISH]"));
    TablePrinter t({"app", "runtime", "faults", "major", "contrib",
                    "accuracy", "swap-outs", "lock-free", "drops"});
    for (std::size_t i = 0; i < exp.system().app_count(); ++i) {
      const auto& m = exp.system().metrics(i);
      t.AddRow({m.name, FormatTime(m.finish_time),
                std::to_string(m.faults), std::to_string(m.faults_major),
                TablePrinter::Num(m.ContributionPct(), 1) + "%",
                TablePrinter::Num(m.AccuracyPct(), 1) + "%",
                std::to_string(m.swapouts),
                std::to_string(m.lockfree_swapouts),
                std::to_string(exp.system().scheduler().drops_for(
                    exp.system().cgroup_of(i)))});
    }
    t.Print();
    std::printf("RDMA in %.0fMB/s out %.0fMB/s, WMMR %.2f\n",
                exp.system()
                        .nic()
                        .bytes_series(rdma::Direction::kIngress)
                        .MeanRate() /
                    1e6,
                exp.system()
                        .nic()
                        .bytes_series(rdma::Direction::kEgress)
                        .MeanRate() /
                    1e6,
                exp.system().Wmmr(rdma::Direction::kIngress));
  }
  return finished ? 0 : 1;
}

int RunSweep(const Options& opt) {
  orchestrator::ScenarioSpec scenario;
  scenario.systems = opt.systems;
  scenario.topologies = opt.topologies;
  scenario.tiers = opt.tiers;
  scenario.granularities = opt.granularities;
  scenario.overrides = opt.overrides;
  scenario.ratios = opt.ratios;
  scenario.scales = opt.scales;
  scenario.seeds = opt.seeds;
  scenario.sim_threads = opt.sim_threads;
  for (auto& [name, cores] : opt.apps) {
    core::AppBuild b;
    b.name = name;
    b.cores = cores;
    scenario.apps.push_back(std::move(b));
  }
  // Validate preset + topology + tier names before spinning up the pool.
  for (const std::string& s : scenario.systems) ResolveSystem(s, {});
  for (const std::string& t : scenario.topologies) ResolveTopology(t);
  for (const std::string& t : scenario.tiers) ResolveTier(t);
  for (const std::string& g : scenario.granularities) ResolveGranularity(g);

  orchestrator::SweepOptions sweep_opts;
  sweep_opts.jobs = opt.jobs;
  sweep_opts.max_live = opt.max_live;
  sweep_opts.thread_budget = opt.thread_budget;
  sweep_opts.cancel_on_failure = opt.cancel_on_failure;
  sweep_opts.progress = opt.progress;
  orchestrator::SweepEngine engine(sweep_opts);
  // A --fault-plan applies to every grid point: stamp the expanded specs
  // (labels are untouched — the plan is not a sweep axis).
  std::vector<orchestrator::RunSpec> specs = scenario.Expand();
  if (auto plan = ResolvePlan(opt))
    for (orchestrator::RunSpec& r : specs) r.exp.config.fault_plan = plan;
  // --harvest applies to every grid point (not a batch-sweep axis; use
  // `canvasctl churn --harvests=` for the axis form).
  if (opt.harvests.set) {
    remote::HarvestConfig harvest = ResolveHarvest(opt.harvests.front());
    for (orchestrator::RunSpec& r : specs) r.exp.config.remote.harvest = harvest;
  }
  auto result = engine.Run(std::move(specs));

  if (!opt.out.empty()) {
    std::ofstream os(opt.out);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
      return 1;
    }
    result.WriteJson(os);
    std::fprintf(stderr, "wrote %s (%zu runs, %u jobs, %.2fs)\n",
                 opt.out.c_str(), result.runs.size(), result.jobs,
                 result.wall_sec);
  } else {
    result.WriteJson(std::cout);
  }
  return result.all_ok ? 0 : 1;
}

int RunServe(const Options& opt) {
  orchestrator::ServingScenarioSpec scenario;
  scenario.systems = opt.systems;
  scenario.overrides = opt.overrides;
  scenario.arrivals = opt.arrivals;
  scenario.seeds = opt.seeds;
  scenario.sim_threads = opt.sim_threads;
  scenario.qos_enabled = opt.qos;
  if (!opt.qos_curve_path.empty()) {
    std::string err;
    auto curve = serving::SupplyCurve::LoadFile(opt.qos_curve_path, &err);
    if (!curve) {
      std::fprintf(stderr, "bad supply curve '%s': %s\n",
                   opt.qos_curve_path.c_str(), err.c_str());
      std::exit(2);
    }
    scenario.qos.supply = std::move(*curve);
  }
  // `serve` defaults to the pool4 topology (the QoS plane's migration
  // lever needs a multi-server pool); --topology/--topologies override.
  scenario.topologies = opt.topologies;
  scenario.granularities = opt.granularities;

  scenario.tenants = opt.tenants;
  if (scenario.tenants.empty()) {
    // Default co-run: a latency-sensitive frontend carrying the arrival
    // axis plus a best-effort batch tenant the QoS plane may shed.
    serving::TenantSpec fe;
    fe.name = "frontend";
    fe.arrival.rate_rps = 150000;
    fe.load_tenant = true;
    serving::TenantSpec batch;
    batch.name = "batch";
    batch.arrival.rate_rps = 50000;
    batch.best_effort = true;
    scenario.tenants = {fe, batch};
  }
  for (serving::TenantSpec& t : scenario.tenants) {
    t.slo = opt.slo;
    t.horizon = SimTime(opt.horizon_sec * 1e9);
    t.ratio = opt.ratios.front();
  }
  for (const std::string& s : scenario.systems) ResolveSystem(s, {});
  for (const std::string& t : scenario.topologies) ResolveTopology(t);
  for (const std::string& g : scenario.granularities) ResolveGranularity(g);
  for (const std::string& a : scenario.arrivals) {
    if (!workload::ArrivalKindFromName(a)) {
      std::fprintf(stderr,
                   "unknown arrival process '%s' (poisson | diurnal | "
                   "flash)\n",
                   a.c_str());
      std::exit(2);
    }
  }

  orchestrator::SweepOptions sweep_opts;
  sweep_opts.jobs = opt.jobs;
  sweep_opts.max_live = opt.max_live;
  sweep_opts.thread_budget = opt.thread_budget;
  sweep_opts.cancel_on_failure = opt.cancel_on_failure;
  sweep_opts.progress = opt.progress;
  orchestrator::SweepEngine engine(sweep_opts);
  std::vector<serving::ServingSpec> specs = scenario.Expand();
  if (opt.harvests.set) {
    remote::HarvestConfig harvest = ResolveHarvest(opt.harvests.front());
    for (serving::ServingSpec& s : specs) s.config.remote.harvest = harvest;
  }
  auto result = engine.RunServing(std::move(specs));

  if (!opt.out.empty()) {
    std::ofstream os(opt.out);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
      return 1;
    }
    result.WriteJson(os);
    std::fprintf(stderr, "wrote %s (%zu runs, %u jobs, %.2fs)\n",
                 opt.out.c_str(), result.runs.size(), result.jobs,
                 result.wall_sec);
  } else {
    result.WriteJson(std::cout);
  }
  return result.all_ok ? 0 : 1;
}

int RunChurnCmd(const Options& opt) {
  orchestrator::ChurnScenarioSpec scenario;
  scenario.systems = opt.systems;
  scenario.overrides = opt.overrides;
  scenario.topologies = opt.topologies;
  scenario.tiers = opt.tiers;
  scenario.harvests = opt.harvests;
  scenario.seeds = opt.seeds;
  scenario.sim_threads = opt.sim_threads;
  scenario.churn = opt.churn;
  scenario.churn.horizon = SimDuration(opt.horizon_sec * 1e9);
  for (const std::string& s : scenario.systems) ResolveSystem(s, {});
  for (const std::string& t : scenario.topologies) ResolveTopology(t);
  for (const std::string& t : scenario.tiers) ResolveTier(t);
  for (const std::string& h : scenario.harvests) ResolveHarvest(h);

  orchestrator::SweepOptions sweep_opts;
  sweep_opts.jobs = opt.jobs;
  sweep_opts.max_live = opt.max_live;
  sweep_opts.thread_budget = opt.thread_budget;
  sweep_opts.cancel_on_failure = opt.cancel_on_failure;
  sweep_opts.progress = opt.progress;
  orchestrator::SweepEngine engine(sweep_opts);
  orchestrator::ChurnSweepResult result = engine.RunChurn(scenario);

  if (!opt.out.empty()) {
    std::ofstream os(opt.out);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
      return 1;
    }
    result.WriteJson(os);
    std::fprintf(stderr, "wrote %s (%zu runs, %u jobs, %.2fs)\n",
                 opt.out.c_str(), result.runs.size(), result.jobs,
                 result.wall_sec);
  } else {
    result.WriteJson(std::cout);
  }
  return result.all_ok ? 0 : 1;
}

int ParseAndRunChurn(int argc, char** argv, int first_arg) {
  Options opt;
  opt.topologies.values = {"pool4"};  // churn pairs with a server pool
  // Cluster-day defaults: a long horizon with small tenants.
  opt.horizon_sec = 2.0;
  for (int i = first_arg; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return Usage(stdout, 0);
    if (ParseChurnOnly(arg, opt)) continue;
    if (ParseCommon(arg, opt)) continue;
    if (ParseSweepOnly(arg, opt)) continue;
    if (arg.rfind("--horizon=", 0) == 0) {
      opt.horizon_sec = std::atof(arg.substr(std::strlen("--horizon=")).c_str());
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return Usage(stderr, 2);
    }
    ParseChurnTemplate(arg, opt);
  }
  return RunChurnCmd(opt);
}

int ParseAndRunServe(int argc, char** argv, int first_arg) {
  Options opt;
  opt.topologies = {"pool4"};
  for (int i = first_arg; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return Usage(stdout, 0);
    if (ParseCommon(arg, opt)) continue;
    if (ParseSweepOnly(arg, opt)) continue;
    if (ParseServeOnly(arg, opt)) continue;
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return Usage(stderr, 2);
    }
    ParseServeTenant(arg, opt);
  }
  return RunServe(opt);
}

int ParseAndRun(int argc, char** argv, int first_arg, bool sweep) {
  Options opt;
  for (int i = first_arg; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return Usage(stdout, 0);
    if (ParseCommon(arg, opt)) continue;
    if (sweep && ParseSweepOnly(arg, opt)) continue;
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return Usage(stderr, 2);
    }
    ParseApp(arg, opt);
  }
  if (opt.apps.empty()) return Usage(stderr, 2);
  return sweep ? RunSweep(opt) : RunOne(opt);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(stderr, 2);
  std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") return Usage(stdout, 0);
  if (cmd == "list-apps" || cmd == "--list") return ListApps();
  if (cmd == "list-axes") return ListAxes();
  if (cmd == "list-systems") return ListSystems();
  if (cmd == "list-servers") return ListServers();
  if (cmd == "list-tiers") return ListTiers();
  if (cmd == "run") return ParseAndRun(argc, argv, 2, /*sweep=*/false);
  if (cmd == "sweep") return ParseAndRun(argc, argv, 2, /*sweep=*/true);
  if (cmd == "serve") return ParseAndRunServe(argc, argv, 2);
  if (cmd == "churn") return ParseAndRunChurn(argc, argv, 2);
  // The flat form `canvasctl [options] app ...` (no subcommand) was
  // deprecated and is now a hard error — fail loudly rather than guessing.
  std::fprintf(stderr,
               "canvasctl: '%s' is not a subcommand; the old flat form was "
               "removed.\nMigrate to `canvasctl run %s ...` (see "
               "`canvasctl --help`).\n",
               cmd.c_str(), cmd.c_str());
  return 2;
}
