#include "trace/histogram.h"

#include <algorithm>
#include <cmath>

namespace canvas::trace {

std::uint64_t LogHistogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the requested order statistic, 1-based ceil like HdrHistogram.
  std::uint64_t rank =
      std::max<std::uint64_t>(1, std::uint64_t(std::ceil(p / 100.0 *
                                                         double(count_))));
  std::uint64_t cum = 0;
  for (std::uint32_t i = 0; i < kNumBuckets; ++i) {
    cum += counts_[i];
    if (cum >= rank) {
      // Upper edge of the bucket, clamped to the recorded extremes.
      std::uint64_t hi =
          i + 1 < kNumBuckets ? BucketLow(i + 1) - 1 : max_;
      return std::clamp(hi, min_, max_);
    }
  }
  return max_;
}

LogHistogram LogHistogram::Since(const LogHistogram& start) const {
  LogHistogram out;
  std::uint32_t lo = kNumBuckets, hi = 0;
  for (std::uint32_t i = 0; i < kNumBuckets; ++i) {
    std::uint64_t d = counts_[i] - start.counts_[i];
    out.counts_[i] = d;
    if (d) {
      if (i < lo) lo = i;
      hi = i;
    }
  }
  out.count_ = count_ - start.count_;
  out.sum_ = sum_ - start.sum_;
  if (out.count_ == 0) return out;
  // The exact interval extremes are unrecoverable from two cumulative
  // snapshots; reconstruct them from the occupied bucket edges so every
  // interval sample still satisfies min_ <= v <= max_ within the bucket
  // quantization bound. The top bucket's upper edge would overflow uint64,
  // so fall back to the cumulative max there (an upper bound: the interval
  // max lives in the same bucket).
  out.min_ = BucketLow(lo);
  out.max_ = hi + 1 < kNumBuckets ? BucketLow(hi + 1) - 1 : max_;
  return out;
}

void LogHistogram::Merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  for (std::uint32_t i = 0; i < kNumBuckets; ++i)
    counts_[i] += other.counts_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

}  // namespace canvas::trace
