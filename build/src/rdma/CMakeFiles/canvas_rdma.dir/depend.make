# Empty dependencies file for canvas_rdma.
# This may be replaced when dependencies are built.
