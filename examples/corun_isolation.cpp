// Co-run isolation demo: the paper's headline scenario.
//
// Runs the three native applications (Snappy, Memcached, XGBoost) together
// with one managed application under four swap systems, printing each app's
// slowdown relative to its solo run — the experiment behind Figures 2, 10
// and 11.
//
//   ./build/examples/corun_isolation [managed-app] [scale]
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/experiment.h"
#include "workload/apps.h"

using namespace canvas;

namespace {

core::AppSpec Spec(const std::string& name, double scale, double ratio,
                   std::uint32_t cores) {
  workload::AppParams p;
  p.scale = scale;
  auto w = workload::MakeByName(name, p);
  auto cg = workload::CgroupFor(w, ratio, cores);
  return core::AppSpec{std::move(w), std::move(cg)};
}

struct App {
  std::string name;
  std::uint32_t cores;
};

}  // namespace

int main(int argc, char** argv) {
  std::string managed = argc > 1 ? argv[1] : "spark-lr";
  double scale = argc > 2 ? std::atof(argv[2]) : 0.3;
  const double ratio = 0.25;

  std::vector<App> apps = {
      {managed, 24}, {"snappy", 1}, {"memcached", 4}, {"xgboost", 16}};

  PrintBanner("Co-run isolation: " + managed +
              " + natives, 25% local memory");

  // Solo baselines on Linux 5.5.
  std::vector<SimTime> solo;
  for (const App& a : apps) {
    std::vector<core::AppSpec> one;
    one.push_back(Spec(a.name, scale, ratio, a.cores));
    core::Experiment e(core::SystemConfig::Linux55(), std::move(one));
    e.Run();
    solo.push_back(e.FinishTime(0));
  }

  TablePrinter table({"system", apps[0].name, "snappy", "memcached",
                      "xgboost", "RDMA in", "WMMR", "drops"});
  for (auto mk : {core::SystemConfig::Linux55, core::SystemConfig::Fastswap,
                  core::SystemConfig::CanvasIsolation,
                  core::SystemConfig::CanvasFull}) {
    auto cfg = mk();
    std::vector<core::AppSpec> corun;
    for (const App& a : apps) corun.push_back(Spec(a.name, scale, ratio, a.cores));
    core::Experiment e(cfg, std::move(corun));
    bool ok = e.Run();
    std::vector<std::string> row{cfg.name};
    for (std::size_t i = 0; i < apps.size(); ++i) {
      row.push_back(ok ? TablePrinter::Num(
                             core::Slowdown(e.FinishTime(i), solo[i]), 2) +
                             "x"
                       : "-");
    }
    row.push_back(FormatBytes(e.system()
                                  .nic()
                                  .bytes_series(rdma::Direction::kIngress)
                                  .MeanRate()) +
                  "/s");
    row.push_back(
        TablePrinter::Num(e.system().Wmmr(rdma::Direction::kIngress), 2));
    row.push_back(std::to_string(e.system().scheduler().drops()));
    table.AddRow(std::move(row));
  }
  table.Print();
  std::puts("\nSlowdowns are relative to each app's solo run on Linux 5.5.");
  return 0;
}
