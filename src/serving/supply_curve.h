// Per-window latency/supply curve for the QoS plane (DESIGN.md §13).
//
// Memtrade's consumer manager consults a `cmanager_latency` trace: a time
// series telling the control loop how much latency headroom the current
// spot-memory supply leaves each control window. We reproduce the shape
// as a step function over the DES clock, loaded from `time_ms,scale` CSV
// rows. Each control tick the QoS plane looks up the scale for "now" and
// multiplies every tenant's SLO bounds by it before judging the window:
// scale > 1 loosens the bounds (plentiful supply — tolerate slower faults
// before escalating), scale < 1 tightens them (supply crunch — escalate
// earlier). An empty curve, the default, scales by exactly 1.0 and leaves
// judgment byte-for-byte identical to a plane built before this knob
// existed.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace canvas::serving {

struct SupplyCurve {
  struct Point {
    SimTime at = 0;      ///< step edge on the DES clock
    double scale = 1.0;  ///< SLO-bound multiplier from `at` onward
  };

  /// Step edges in nondecreasing time order (enforced by Parse).
  std::vector<Point> points;

  bool empty() const { return points.empty(); }

  /// Step-function lookup: the scale of the last point at or before
  /// `now`; 1.0 before the first point or when the curve is empty.
  double ScaleAt(SimTime now) const;

  /// Parse `time_ms,scale` CSV text: one point per line, commas or
  /// whitespace as separators, `#` starts a comment, blank lines are
  /// skipped. Times must be nondecreasing and nonnegative, scales
  /// positive. Returns nullopt and fills `err` on malformed input.
  static std::optional<SupplyCurve> Parse(const std::string& text,
                                          std::string* err = nullptr);

  /// Parse() over the contents of `path`.
  static std::optional<SupplyCurve> LoadFile(const std::string& path,
                                             std::string* err = nullptr);
};

}  // namespace canvas::serving
