// Conservative parallel DES engine: logical processes with lookahead.
//
// The serial Simulator runs the whole model on one event queue. The
// parallel engine partitions the model into logical processes (LPs) — in
// the Canvas reproduction, one root LP for the cgroup/CPU/scheduler/NIC
// domain plus one LP per remote memory server — each owning a private
// Simulator (timing wheel + clock). LPs exchange events over directed
// channels: bounded SPSC rings for transport, a receiver-side staging
// min-heap for ordering, and a per-channel *watermark* — a monotone promise
// that no future event will arrive on the channel before the advertised
// instant. An LP may execute any event strictly below the minimum of its
// in-channel watermarks (its horizon); watermarks are derived from each
// sender's earliest possible next execution plus the channel's lookahead
// (for Canvas, the NIC wire latency on the server→root path), which is the
// classic Chandy–Misra–Bryant null-message scheme.
//
// Determinism contract (the hard requirement, see DESIGN.md §12): event
// order is bit-for-bit identical at any thread count. Every event carries a
// (when, seq) rank; each LP merges its local queue against staged cross
// events by explicit rank comparison, so the interleaving of ring arrivals
// and watermark advances can never influence execution order. Cross-LP
// sends carry deterministic sequence tags chosen by the sender (the server
// bridge reserves them from the root queue's own seq counter, reproducing
// the serial engine's insertion order exactly). Rank ties across different
// sources break by source index — also deterministic.
//
// Liveness requires every directed channel cycle to have positive total
// lookahead (root→server may be 0 as long as server→root is > 0). When all
// workers go idle at a stable state, worker 0 runs a synchronized
// null-message burst — a min-plus (Bellman–Ford) fixed point over the
// frozen LP heads — which advances every watermark to its limit in one
// pass, with no lap-by-lap cycling and natural saturation at kTimeNever.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "sim/simulator.h"
#include "sim/spsc.h"

namespace canvas::sim {

class ParallelSimulator {
 public:
  using LpId = std::uint32_t;
  using ChannelId = std::uint32_t;

  /// `threads` is the worker budget; it is clamped to the LP count at the
  /// first Run/RunUntil. The calling thread acts as worker 0 (running the
  /// root LP); threads-1 additional workers are spawned lazily.
  explicit ParallelSimulator(unsigned threads);
  ~ParallelSimulator();
  ParallelSimulator(const ParallelSimulator&) = delete;
  ParallelSimulator& operator=(const ParallelSimulator&) = delete;

  /// Add a logical process. If `external` is non-null the LP wraps that
  /// Simulator (the Experiment's root simulator, so component references
  /// into it stay valid); otherwise the LP owns a fresh one. LPs must be
  /// added before the first Run/RunUntil. LP 0 always runs on worker 0.
  LpId AddLp(std::string name, Simulator* external = nullptr);

  /// Add a directed channel src→dst with the given lookahead promise:
  /// every Send on the channel must satisfy `when >= sender clock +
  /// lookahead` at send time. Every channel cycle must have positive total
  /// lookahead or the engine conservatively deadlocks (asserted in debug).
  ChannelId Connect(LpId src, LpId dst, SimDuration lookahead);

  Simulator& lp(LpId id) { return *lps_[id].sim; }
  const Simulator& lp(LpId id) const { return *lps_[id].sim; }
  std::size_t lp_count() const { return lps_.size(); }
  unsigned threads() const { return threads_; }

  /// Send a cross-LP event: `cb` runs on the destination LP at `when`,
  /// ranked (when, seq) against the destination's local events and other
  /// staged arrivals. Must be called from the channel's source LP while the
  /// engine runs (or from the setup thread before the first run). The seq
  /// tag must be deterministic — derived from simulation state, never from
  /// wall-clock or thread timing.
  void Send(ChannelId ch, SimTime when, std::uint64_t seq, InlineCallback cb);

  /// Run until every LP's queue, staging heap and ring is empty.
  void Run() { RunUntil(kTimeNever); }

  /// Run all LPs up to and including `deadline` (events at exactly
  /// `deadline` fire, mirroring Simulator::RunUntil). Returns true if the
  /// whole system drained. When it did not, every LP clock is parked at
  /// `deadline`. Deadlines must be non-decreasing across calls.
  bool RunUntil(SimTime deadline);

  /// Sum of events executed across all LPs (root-local + cross).
  std::uint64_t total_executed() const;

  /// Join worker threads. Implied by the destructor; safe to call twice.
  void Shutdown();

 private:
  struct Channel {
    SpscRing<CrossEvent, 1024> ring;        // src-worker → dst-worker
    std::atomic<SimTime> watermark{0};      // promise: no arrival below this
    SimDuration lookahead = 0;
    LpId src = 0, dst = 0;
    std::vector<CrossEvent> staged;         // dst-owned min-heap (when, seq)
  };

  struct Lp {
    std::string name;
    Simulator* sim = nullptr;               // external or owned.get()
    std::unique_ptr<Simulator> owned;
    std::vector<std::uint32_t> in, out;     // channel indices
    unsigned worker = 0;
  };

  static SimTime SatAdd(SimTime a, SimDuration b) {
    return a >= kTimeNever - b ? kTimeNever : a + b;
  }
  static bool CasMax(std::atomic<SimTime>& wm, SimTime v);

  void EnsureStarted();
  void ThreadBody(unsigned w);
  void WorkerSlice(unsigned w, std::uint64_t my_gen);
  bool RunLp(Lp& lp);
  void DrainRings(Lp& lp);
  void StagePush(Channel& ch, CrossEvent ev);
  SimTime InHorizon(const Lp& lp) const;
  /// Earliest pending work on this LP: min over the local queue head and
  /// every staged in-channel head. kTimeNever when fully empty. Valid only
  /// while the LP's owner is quiesced (used by the frozen-system burst).
  SimTime LowerBound(Lp& lp) const;
  /// Synchronized null-message burst over the frozen system (all workers
  /// idle at a stable epoch): min-plus fixed point of LP lower bounds over
  /// the channel graph, then CAS-max every watermark to its limit. Returns
  /// true if any watermark advanced.
  bool CentralAdvanceWatermarks();
  bool ComputeDrained() const;
  /// Worker 0's extra duty while idle-spinning at epoch `e`: certify that
  /// every worker is idle at `e`, advance watermarks centrally, and declare
  /// the slice done when the system is at its fixed point.
  void TryCoordinate(std::uint64_t e);

  const unsigned threads_requested_;
  unsigned threads_ = 1;                    // effective, set at start
  bool started_ = false;
  std::vector<Lp> lps_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::vector<Lp*>> worker_lps_;
  std::vector<std::thread> workers_;

  std::atomic<std::uint64_t> slice_gen_{0};   // bumped per RunUntil: wakes parked workers
  std::atomic<std::uint64_t> epoch_{0};       // bumped on send/watermark-advance/slice-start
  std::atomic<std::uint64_t> deadline_{0};
  std::atomic<bool> done_{false};
  std::atomic<bool> stop_{false};
  /// Idle token per worker: 0 while active, epoch+1 once the worker has
  /// verified it has nothing executable at that epoch. The per-slice epoch
  /// bump in RunUntil fences out stale tokens from the previous slice.
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> idle_at_;

  bool drained_ = false;                    // written by worker 0 only
  SimTime last_deadline_ = 0;
  std::vector<SimTime> bf_lb_;              // scratch for the min-plus pass
};

}  // namespace canvas::sim
