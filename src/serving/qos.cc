#include "serving/qos.h"

#include <algorithm>

#include "core/swap_system.h"
#include "sched/two_dim.h"
#include "sim/simulator.h"

namespace canvas::serving {

void QosPlane::AddTenant(QosTenant t) {
  trackers_.emplace_back(t.slo);
  stats_.emplace_back();
  tenants_.push_back(std::move(t));
}

void QosPlane::Attach(sim::Simulator& sim, core::SwapSystem& sys) {
  sim_ = &sim;
  sys_ = &sys;
  base_weight_.resize(tenants_.size(), 1.0);
  sched::TwoDimScheduler* wfq = sys.two_dim_scheduler();
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    base_weight_[i] = sys.cgroup(tenants_[i].app).spec().rdma_weight;
    stats_[i].current_weight =
        wfq ? wfq->Weight(sys.cgroup_of(tenants_[i].app)) : 0.0;
  }
  sim.Schedule(cfg_.control_period, [this] { Tick(); });
}

void QosPlane::Tick() {
  ++ticks_;
  // The supply curve rescales every tenant's SLO bounds for this window
  // (1.0 with the default empty curve, leaving the verdicts untouched).
  double scale = cfg_.supply.ScaleAt(sim_->Now());
  last_scale_ = scale;
  if (scale != 1.0) ++scaled_ticks_;
  // Judge every tenant's window (best-effort included, for reporting), then
  // act on protected violations. Judging first keeps each tracker's window
  // aligned to the tick even when several tenants violate at once.
  std::vector<bool> violated(tenants_.size(), false);
  for (std::size_t i = 0; i < tenants_.size(); ++i)
    violated[i] = trackers_[i].Observe(
        sys_->metrics(tenants_[i].app).fault_latency, scale);
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i].best_effort) continue;
    if (violated[i]) {
      Escalate(i);
    } else if (trackers_[i].clean_run() >= cfg_.heal_windows) {
      Heal(i);
    }
  }
  if (!sys_->AllFinished())
    sim_->Schedule(cfg_.control_period, [this] { Tick(); });
}

void QosPlane::Escalate(std::size_t victim) {
  const QosTenant& t = tenants_[victim];
  SimTime now = sim_->Now();
  // 1. WFQ weight boost for the victim.
  if (cfg_.enable_weight_boost) {
    if (sched::TwoDimScheduler* wfq = sys_->two_dim_scheduler()) {
      CgroupId cg = sys_->cgroup_of(t.app);
      double cap = base_weight_[victim] * cfg_.boost_cap;
      double w = std::min(cap, wfq->Weight(cg) * cfg_.boost_factor);
      if (w > wfq->Weight(cg)) {
        wfq->SetWeight(cg, w);
        ++stats_[victim].weight_boosts;
      }
      stats_[victim].current_weight = wfq->Weight(cg);
    }
  }
  // 2 + 3. Push load off the best-effort tenants.
  for (std::size_t j = 0; j < tenants_.size(); ++j) {
    if (!tenants_[j].best_effort || !tenants_[j].control) continue;
    workload::LoadControl& ctl = *tenants_[j].control;
    if (cfg_.enable_shedding && ctl.shed_fraction < cfg_.shed_max) {
      ctl.shed_fraction =
          std::min(cfg_.shed_max, ctl.shed_fraction + cfg_.shed_step);
      ++stats_[j].shed_steps;
    }
    if (cfg_.enable_deferral && ctl.admit_time > now) {
      ctl.admit_time += cfg_.admission_defer;
      ++stats_[j].deferrals;
    }
  }
  // 4. Spread the victim's slabs off its hottest server.
  if (cfg_.enable_migration) {
    if (remote::ServerPool* pool = sys_->mutable_pool()) {
      std::uint32_t pid = sys_->partition(t.app).pool_id();
      if (pid != swapalloc::SwapPartition::kNoPoolId)
        stats_[victim].slabs_migrated +=
            pool->RebalanceTenant(pid, cfg_.migrate_slabs);
    }
  }
}

void QosPlane::Heal(std::size_t tenant) {
  // One unwind step per clean tick: weight decays toward base, and the
  // shed/defer pressure this tenant caused releases one step.
  if (cfg_.enable_weight_boost) {
    if (sched::TwoDimScheduler* wfq = sys_->two_dim_scheduler()) {
      CgroupId cg = sys_->cgroup_of(tenants_[tenant].app);
      double w = std::max(base_weight_[tenant],
                          wfq->Weight(cg) / cfg_.boost_factor);
      wfq->SetWeight(cg, w);
      stats_[tenant].current_weight = wfq->Weight(cg);
    }
  }
  if (cfg_.enable_shedding) {
    for (std::size_t j = 0; j < tenants_.size(); ++j) {
      if (!tenants_[j].best_effort || !tenants_[j].control) continue;
      workload::LoadControl& ctl = *tenants_[j].control;
      ctl.shed_fraction = std::max(0.0, ctl.shed_fraction - cfg_.shed_step);
    }
  }
}

}  // namespace canvas::serving
