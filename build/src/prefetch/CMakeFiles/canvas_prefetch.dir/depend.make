# Empty dependencies file for canvas_prefetch.
# This may be replaced when dependencies are built.
